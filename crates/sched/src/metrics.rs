//! Scheduling metrics (paper Section III-C2):
//!
//! * **Connection distance (CD)** of a variable — the length of the longest
//!   direct-relation path through the variable within its group, *modulo
//!   recursion* (computed on the SCC condensation of the group's direct
//!   subgraph). Shorter CD ⇒ issued earlier within the group.
//! * **Dependence depth (DD)** of a variable of type `t` — `1/L(t)`, where
//!   `L(t)` is the height of `t`'s field-containment hierarchy. A group's
//!   DD is the minimum over its members; groups are issued in increasing DD
//!   (equivalently, decreasing maximum type level): deeply-nested container
//!   variables are resolved first because shallower queries depend on them.

use crate::groups::Groups;
use parcfl_concurrent::FxHashMap;
use parcfl_pag::algo::{longest_path_through, tarjan_scc};
use parcfl_pag::{NodeId, Pag};
use rayon::prelude::*;

/// Connection distances for every query variable, computed per group.
pub fn connection_distances(pag: &Pag, groups: &Groups) -> FxHashMap<NodeId, u64> {
    // Groups are independent: compute them in parallel (rayon).
    let per_group: Vec<Vec<(NodeId, u64)>> = groups
        .component_nodes
        .par_iter()
        .map(|nodes| group_cds(pag, nodes))
        .collect();
    let mut out = FxHashMap::default();
    for g in per_group {
        out.extend(g);
    }
    out
}

/// CDs for one component: SCC-condense its direct subgraph and take the
/// longest DAG path through each node's component.
fn group_cds(pag: &Pag, nodes: &[NodeId]) -> Vec<(NodeId, u64)> {
    let n = nodes.len();
    let mut local: FxHashMap<NodeId, u32> = FxHashMap::default();
    for (i, &v) in nodes.iter().enumerate() {
        local.insert(v, i as u32);
    }
    // Direct edges within the component, in local indices.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &v in nodes {
        for e in pag.outgoing(v) {
            if e.kind.is_direct() {
                if let Some(&d) = local.get(&e.dst) {
                    succ[local[&v] as usize].push(d as usize);
                }
            }
        }
    }
    let scc = tarjan_scc(n, |v| succ[v].iter().copied());
    // Condensation edges, deduplicated.
    let mut cedges: Vec<(u32, u32)> = Vec::new();
    for (v, ss) in succ.iter().enumerate() {
        let cv = scc.component_of(v) as u32;
        for &w in ss {
            let cw = scc.component_of(w) as u32;
            if cv != cw {
                cedges.push((cv, cw));
            }
        }
    }
    cedges.sort_unstable();
    cedges.dedup();
    let lp = longest_path_through(scc.component_count(), &cedges);
    nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, lp[scc.component_of(i)]))
        .collect()
}

/// Type level `L(t)` for every query variable (0 for non-reference types).
pub fn type_levels(pag: &Pag, queries: &[NodeId]) -> FxHashMap<NodeId, u32> {
    type_levels_from(&pag.types().levels(), pag, queries)
}

/// [`type_levels`] with the per-type level table precomputed. The table is
/// query-independent (one `pag.types().levels()` pass per PAG), so callers
/// issuing many schedules over one PAG — the schedule cache — compute it
/// once and project per query set.
pub fn type_levels_from(
    all_levels: &[u32],
    pag: &Pag,
    queries: &[NodeId],
) -> FxHashMap<NodeId, u32> {
    queries
        .iter()
        .map(|&q| (q, all_levels[pag.node(q).ty.index()]))
        .collect()
}

/// A group's scheduling key: its maximum member type level. Groups are
/// issued in *decreasing* max level, which is increasing dependence depth
/// `DD = 1/L` (the paper's order).
pub fn group_level(levels: &FxHashMap<NodeId, u32>, members: &[NodeId]) -> u32 {
    members
        .iter()
        .filter_map(|m| levels.get(m).copied())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcfl_frontend::build_pag;

    #[test]
    fn cd_longest_path_through_chain() {
        // a -> b -> c assignments: all on the length-2 path.
        let src = "class Obj { }
                   class A { method m() {
                     var a: Obj; var b: Obj; var c: Obj; var d: Obj;
                     a = new Obj; b = a; c = b;
                     d = new Obj;
                   } }";
        let pag = build_pag(src).unwrap().pag;
        let ids: Vec<_> = ["a@A.m", "b@A.m", "c@A.m", "d@A.m"]
            .iter()
            .map(|n| pag.node_by_name(n).unwrap())
            .collect();
        let groups = Groups::build(&pag, &ids);
        let cd = connection_distances(&pag, &groups);
        assert_eq!(cd[&ids[0]], 2);
        assert_eq!(cd[&ids[1]], 2);
        assert_eq!(cd[&ids[2]], 2);
        assert_eq!(cd[&ids[3]], 0, "isolated variable has CD 0");
    }

    #[test]
    fn cd_modulo_recursion() {
        // x = y; y = x; forms an assign cycle: CD must be finite (the SCC
        // is one condensation node), extended by the tail z = y.
        let src = "class Obj { }
                   class A { method m() {
                     var x: Obj; var y: Obj; var z: Obj;
                     x = new Obj;
                     x = y; y = x; z = y;
                   } }";
        let pag = build_pag(src).unwrap().pag;
        let x = pag.node_by_name("x@A.m").unwrap();
        let y = pag.node_by_name("y@A.m").unwrap();
        let z = pag.node_by_name("z@A.m").unwrap();
        let groups = Groups::build(&pag, &[x, y, z]);
        let cd = connection_distances(&pag, &groups);
        assert_eq!(cd[&x], 1, "cycle collapses, one edge to z remains");
        assert_eq!(cd[&y], 1);
        assert_eq!(cd[&z], 1);
    }

    #[test]
    fn type_levels_and_group_level() {
        let src = "class Obj { }
                   class Inner { field o: Obj; }
                   class Outer { field i: Inner; }
                   class A { method m() {
                     var o: Obj; var i: Inner; var u: Outer; var k: int;
                     o = new Obj; i = new Inner; u = new Outer;
                   } }";
        let pag = build_pag(src).unwrap().pag;
        let o = pag.node_by_name("o@A.m").unwrap();
        let i = pag.node_by_name("i@A.m").unwrap();
        let u = pag.node_by_name("u@A.m").unwrap();
        let k = pag.node_by_name("k@A.m").unwrap();
        let lv = type_levels(&pag, &[o, i, u, k]);
        assert_eq!(lv[&o], 1);
        assert_eq!(lv[&i], 2);
        assert_eq!(lv[&u], 3);
        assert_eq!(lv[&k], 0, "primitive type has level 0");
        assert_eq!(group_level(&lv, &[o, i, u]), 3);
        assert_eq!(group_level(&lv, &[k]), 0);
        assert_eq!(group_level(&lv, &[]), 0);
    }
}

//! Property tests for the shared graph algorithms.

use parcfl_pag::algo::{longest_path_through, tarjan_scc, UnionFind};
use proptest::prelude::*;

/// Random directed graph as an edge list over n vertices.
fn graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertex is in exactly one component, and mutually reachable
    /// vertices share a component (checked via simple reachability).
    #[test]
    fn scc_partitions_and_respects_mutual_reachability((n, edges) in graph(24)) {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u].push(v);
        }
        let scc = tarjan_scc(n, |v| adj[v].iter().copied());
        // Partition: component ids in range, members cover every vertex once.
        let mut seen = vec![false; n];
        for c in 0..scc.component_count() {
            for v in scc.members_usize(c) {
                prop_assert!(!seen[v], "vertex in two components");
                seen[v] = true;
                prop_assert_eq!(scc.component_of(v), c);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));

        // Reachability closure for the mutual-reachability check.
        let reach = |from: usize| {
            let mut vis = vec![false; n];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut vis[v], true) { continue; }
                stack.extend(adj[v].iter().copied());
            }
            vis
        };
        for u in 0..n.min(8) {
            let ru = reach(u);
            for (v, &ruv) in ru.iter().enumerate() {
                if u == v { continue; }
                let same = scc.component_of(u) == scc.component_of(v);
                let mutual = ruv && reach(v)[u];
                prop_assert_eq!(same, mutual, "u={} v={}", u, v);
            }
        }
    }

    /// Condensation order: an edge u→v across components implies v's
    /// component id is smaller (reverse topological numbering).
    #[test]
    fn scc_component_numbering_is_reverse_topological((n, edges) in graph(24)) {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u].push(v);
        }
        let scc = tarjan_scc(n, |v| adj[v].iter().copied());
        for &(u, v) in &edges {
            let (cu, cv) = (scc.component_of(u), scc.component_of(v));
            if cu != cv {
                prop_assert!(cv < cu, "edge {}→{} but comps {} !> {}", u, v, cu, cv);
            }
        }
    }

    /// Longest-path-through on the condensation DAG: result at each vertex
    /// is at least the length of any single condensation edge chain we can
    /// greedily build through it (sanity lower bound = per-edge ≥ 1 where
    /// edges exist), and zero for isolated vertices.
    #[test]
    fn longest_path_bounds((n, edges) in graph(20)) {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u].push(v);
        }
        let scc = tarjan_scc(n, |v| adj[v].iter().copied());
        let m = scc.component_count();
        let mut cedges: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| (scc.component_of(u) as u32, scc.component_of(v) as u32))
            .filter(|(a, b)| a != b)
            .collect();
        cedges.sort_unstable();
        cedges.dedup();
        let lp = longest_path_through(m, &cedges);
        prop_assert!(lp.len() == m);
        for &(a, b) in &cedges {
            prop_assert!(lp[a as usize] >= 1);
            prop_assert!(lp[b as usize] >= 1);
        }
        prop_assert!(lp.iter().all(|&l| l < m as u64), "path length bounded by vertices");
    }

    /// Union-find agrees with connectivity of the undirected edge set.
    #[test]
    fn union_find_matches_connectivity((n, edges) in graph(24)) {
        let mut uf = UnionFind::new(n);
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            uf.union(u, v);
            adj[u].push(v);
            adj[v].push(u);
        }
        let reach = |from: usize| {
            let mut vis = vec![false; n];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut vis[v], true) { continue; }
                stack.extend(adj[v].iter().copied());
            }
            vis
        };
        for u in 0..n.min(6) {
            let r = reach(u);
            for (v, &rv) in r.iter().enumerate() {
                prop_assert_eq!(uf.same(u, v), rv);
            }
        }
    }
}

//! Dense integer identifiers for every entity in the analysed program.
//!
//! All identifiers are newtypes over `u32`, which keeps the hot graph
//! structures compact (see the type-size guidance in the Rust Performance
//! Book). Conversions to/from `usize` are explicit so that accidental mixing
//! of id spaces is a compile error.

/// Declares a `u32`-backed dense identifier newtype.
macro_rules! dense_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs an id from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Constructs an id from a `usize` index, panicking on overflow.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }

            /// Returns the raw index as `usize` for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// A PAG node: a local variable, a global (static field), or an
    /// allocation-site object.
    NodeId,
    "n"
);
dense_id!(
    /// A field name (`f` in `ld(f)` / `st(f)`). Array elements are collapsed
    /// into the distinguished field [`FieldId::ARR`], as in the paper.
    FieldId,
    "f"
);
dense_id!(
    /// A call site (`i` in `param_i` / `ret_i`).
    CallSiteId,
    "cs"
);
dense_id!(
    /// A reference type (class) or primitive type in the analysed program.
    TypeId,
    "t"
);
dense_id!(
    /// A method of the analysed program.
    MethodId,
    "m"
);

impl FieldId {
    /// The special field all array elements are collapsed into (`arr` in the
    /// paper, Section II-A).
    pub const ARR: FieldId = FieldId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = NodeId::from_usize(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::new(42), id);
    }

    #[test]
    fn debug_formatting_uses_prefix() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{}", FieldId(3)), "f3");
        assert_eq!(format!("{:?}", CallSiteId(1)), "cs1");
        assert_eq!(format!("{:?}", TypeId(0)), "t0");
        assert_eq!(format!("{:?}", MethodId(9)), "m9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FieldId::ARR <= FieldId(1));
    }
}

//! PAG nodes: variables (local or global) and allocation-site objects.
//!
//! Mirrors the node syntax of the paper's Fig. 1:
//! `n := v | o`, `v := l | g`.

use crate::ids::{MethodId, TypeId};

/// The kind of a PAG node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A local variable `l`, owned by a method.
    Local {
        /// The method the local belongs to.
        method: MethodId,
    },
    /// A global variable `g` (a static field of some class). Globals are
    /// analysed context-insensitively (Algorithm 1, line 9).
    Global,
    /// An abstract object `o` named by its allocation site.
    Object {
        /// The method containing the allocation site.
        method: MethodId,
    },
}

impl NodeKind {
    /// Whether the node is a variable (local or global), as opposed to an
    /// object.
    #[inline]
    pub fn is_variable(self) -> bool {
        !matches!(self, NodeKind::Object { .. })
    }

    /// Whether the node is an allocation-site object.
    #[inline]
    pub fn is_object(self) -> bool {
        matches!(self, NodeKind::Object { .. })
    }

    /// Whether the node is a local variable.
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, NodeKind::Local { .. })
    }

    /// Whether the node is a global variable.
    #[inline]
    pub fn is_global(self) -> bool {
        matches!(self, NodeKind::Global)
    }

    /// The owning method, if the node is method-scoped.
    #[inline]
    pub fn method(self) -> Option<MethodId> {
        match self {
            NodeKind::Local { method } | NodeKind::Object { method } => Some(method),
            NodeKind::Global => None,
        }
    }
}

/// Per-node metadata stored by the [`crate::Pag`].
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// What kind of node this is.
    pub kind: NodeKind,
    /// The static (declared) type of the variable, or the concrete type of
    /// the object. Used by query scheduling to estimate dependence depths.
    pub ty: TypeId,
    /// Human-readable name (e.g. `v1@main` or `o@Vector.<init>:6`), used in
    /// reports and DOT dumps only.
    pub name: String,
    /// Whether the node belongs to application code (as opposed to library
    /// code). The paper issues queries for all application-code locals.
    pub is_application: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let l = NodeKind::Local {
            method: MethodId(0),
        };
        let g = NodeKind::Global;
        let o = NodeKind::Object {
            method: MethodId(1),
        };
        assert!(l.is_variable() && l.is_local() && !l.is_global() && !l.is_object());
        assert!(g.is_variable() && g.is_global() && !g.is_local() && !g.is_object());
        assert!(o.is_object() && !o.is_variable());
    }

    #[test]
    fn owning_method() {
        assert_eq!(
            NodeKind::Local {
                method: MethodId(3)
            }
            .method(),
            Some(MethodId(3))
        );
        assert_eq!(NodeKind::Global.method(), None);
        assert_eq!(
            NodeKind::Object {
                method: MethodId(5)
            }
            .method(),
            Some(MethodId(5))
        );
    }
}

//! The frozen Pointer Assignment Graph and its builder.
//!
//! The graph is built once by the frontend (or the synthetic generator) and
//! then frozen into an immutable, cache-friendly CSR representation that is
//! shared read-only by all query-processing threads. The `jmp` shortcut
//! edges of the paper's extended PAG (Fig. 4) are *not* stored here — they
//! are added on the fly during the analysis and live in the solver's
//! concurrent jmp store, which overlays this read-only graph.

use crate::edge::{Edge, EdgeClass, EdgeKind, EDGE_CLASSES};
use crate::ids::{FieldId, MethodId, NodeId};
use crate::node::{NodeInfo, NodeKind};
use crate::types::TypeTable;

/// Mutable accumulator for PAG construction.
#[derive(Default)]
pub struct PagBuilder {
    nodes: Vec<NodeInfo>,
    edges: Vec<Edge>,
    types: TypeTable,
    method_names: Vec<String>,
    call_sites: u32,
}

impl PagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        PagBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            types: TypeTable::new(),
            method_names: Vec::new(),
            call_sites: 0,
        }
    }

    /// Creates a builder that takes ownership of an already-populated type
    /// table (the frontend interns types while parsing).
    pub fn with_types(types: TypeTable) -> Self {
        PagBuilder {
            types,
            ..PagBuilder::new()
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, info: NodeInfo) -> NodeId {
        let id = NodeId::from_usize(self.nodes.len());
        self.nodes.push(info);
        id
    }

    /// Adds an edge between existing nodes.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) {
        debug_assert!(src.index() < self.nodes.len(), "src out of range");
        debug_assert!(dst.index() < self.nodes.len(), "dst out of range");
        self.edges.push(Edge { src, dst, kind });
    }

    /// Registers a method name and returns its id.
    pub fn add_method(&mut self, name: impl Into<String>) -> MethodId {
        let id = MethodId::from_usize(self.method_names.len());
        self.method_names.push(name.into());
        id
    }

    /// Allocates a fresh call-site id.
    pub fn fresh_call_site(&mut self) -> crate::ids::CallSiteId {
        let id = crate::ids::CallSiteId::new(self.call_sites);
        self.call_sites += 1;
        id
    }

    /// Read access to the type table during construction.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Mutable access to the type table during construction.
    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`Pag`], deduplicating edges
    /// and constructing the traversal indexes.
    ///
    /// Both edge arrays are laid out *kind-major* within each node's CSR
    /// range: all `new` edges first, then `assign_l`, and so on in
    /// [`EdgeClass`] order. The per-class boundaries are recorded in a flat
    /// `n × EDGE_CLASSES` offset table so [`Pag::incoming_kind`] /
    /// [`Pag::outgoing_kind`] are plain sub-slice reads and the solver's
    /// dispatch loops never branch on `EdgeKind` per edge.
    pub fn freeze(self) -> Pag {
        build_pag_tables(
            self.nodes,
            self.edges,
            self.types,
            self.method_names,
            self.call_sites,
            0,
        )
    }
}

/// Freezes a node/edge set into the immutable CSR representation — the
/// body of [`PagBuilder::freeze`], shared with [`Pag::apply_delta`] so an
/// edited graph is bit-identical to re-freezing the edited edge set from
/// scratch.
pub(crate) fn build_pag_tables(
    nodes: Vec<NodeInfo>,
    mut edges: Vec<Edge>,
    types: TypeTable,
    method_names: Vec<String>,
    call_sites: u32,
    revision: u64,
) -> Pag {
    let n = nodes.len();

    // Deduplicate edges: duplicate statements add nothing to
    // reachability and only slow traversals down. The sort is the
    // canonical incoming order: dst-major, kind-class within a node,
    // then (src, payload) within a class.
    edges.sort_unstable_by_key(|e| {
        let (class, detail) = edge_sort_key(e.kind);
        (e.dst, class, e.src, detail)
    });
    edges.dedup();

    // Incoming CSR (edges sorted by dst already).
    let mut in_start = vec![0u32; n + 1];
    for e in &edges {
        in_start[e.dst.index() + 1] += 1;
    }
    for i in 1..=n {
        in_start[i] += in_start[i - 1];
    }
    // `edges` is the in-order edge array itself.
    let in_kind = kind_offsets(&edges, &in_start, |e| e.dst);

    // Outgoing CSR: a second, materialised edge array sorted src-major
    // (kind-class, then (dst, payload) within a class), so `outgoing`
    // is a direct slice too — no index indirection on the forward hot
    // path.
    let mut out_edges = edges.clone();
    out_edges.sort_unstable_by_key(|e| {
        let (class, detail) = edge_sort_key(e.kind);
        (e.src, class, e.dst, detail)
    });
    let mut out_start = vec![0u32; n + 1];
    for e in &out_edges {
        out_start[e.src.index() + 1] += 1;
    }
    for i in 1..=n {
        out_start[i] += out_start[i - 1];
    }
    let out_kind = kind_offsets(&out_edges, &out_start, |e| e.src);

    // Field indexes for the alias-matching step of ReachableNodes.
    let nf = types.field_count();
    let mut loads_by_field: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); nf];
    let mut stores_by_field: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); nf];
    for e in &edges {
        match e.kind {
            // Load dst = src.f: base is src.
            EdgeKind::Load(f) => loads_by_field[f.index()].push((e.src, e.dst)),
            // Store dst.f = src: base is dst.
            EdgeKind::Store(f) => stores_by_field[f.index()].push((e.dst, e.src)),
            _ => {}
        }
    }

    Pag {
        nodes,
        edges,
        in_start,
        in_kind,
        out_start,
        out_edges,
        out_kind,
        loads_by_field,
        stores_by_field,
        types,
        method_names,
        call_sites,
        revision,
        packed: std::sync::Arc::new(std::sync::OnceLock::new()),
    }
}

/// Total order over edge kinds used for deterministic dedup. The leading
/// byte is the [`EdgeClass`] discriminant, so class grouping and dedup
/// order agree by construction.
pub(crate) fn edge_sort_key(kind: EdgeKind) -> (u8, u32) {
    match kind {
        EdgeKind::New => (0, 0),
        EdgeKind::AssignLocal => (1, 0),
        EdgeKind::AssignGlobal => (2, 0),
        EdgeKind::Load(f) => (3, f.raw()),
        EdgeKind::Store(f) => (4, f.raw()),
        EdgeKind::Param(i) => (5, i.raw()),
        EdgeKind::Ret(i) => (6, i.raw()),
    }
}

/// Builds the flat `n × EDGE_CLASSES` table of per-class start offsets for
/// a CSR whose edges are already grouped by `key(e)` and kind-class.
/// Entry `[n * EDGE_CLASSES + k]` is the absolute edge index where class
/// `k`'s run begins inside node `n`'s range; the run ends where the next
/// class (or the node's range) begins.
fn kind_offsets(edges: &[Edge], start: &[u32], key: impl Fn(&Edge) -> NodeId) -> Vec<u32> {
    let n = start.len() - 1;
    let mut table = vec![0u32; n * EDGE_CLASSES];
    for node in 0..n {
        let lo = start[node] as usize;
        let hi = start[node + 1] as usize;
        let mut cursor = lo;
        for k in 0..EDGE_CLASSES {
            table[node * EDGE_CLASSES + k] = cursor as u32;
            while cursor < hi && key(&edges[cursor]).index() == node {
                if edges[cursor].kind.class() as usize != k {
                    break;
                }
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, hi, "edges of node {node} not grouped by class");
    }
    table
}

/// The frozen, immutable Pointer Assignment Graph.
#[derive(Clone, Debug)]
pub struct Pag {
    nodes: Vec<NodeInfo>,
    /// All edges, sorted `(dst, class, src)` — this *is* the incoming-edge
    /// array, kind-major within each node's range.
    edges: Vec<Edge>,
    in_start: Vec<u32>,
    /// Per-node per-class start offsets into `edges`
    /// (`n × EDGE_CLASSES`, see [`PagBuilder::freeze`]).
    in_kind: Vec<u32>,
    out_start: Vec<u32>,
    /// The same edge set materialised in `(src, class, dst)` order, so
    /// outgoing ranges are direct slices as well.
    out_edges: Vec<Edge>,
    /// Per-node per-class start offsets into `out_edges`.
    out_kind: Vec<u32>,
    loads_by_field: Vec<Vec<(NodeId, NodeId)>>,
    stores_by_field: Vec<Vec<(NodeId, NodeId)>>,
    types: TypeTable,
    method_names: Vec<String>,
    call_sites: u32,
    /// Applied-revision counter: 0 when frozen, +1 per effective
    /// [`Pag::apply_delta`] (see [`Pag::revision`]).
    revision: u64,
    /// Lazily-built bit-packed adjacency rows ([`Pag::packed`]). Behind an
    /// `Arc` so clones share the one build.
    packed: std::sync::Arc<std::sync::OnceLock<crate::packed::PackedAdj>>,
}

impl Pag {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of call sites.
    #[inline]
    pub fn call_site_count(&self) -> usize {
        self.call_sites as usize
    }

    /// Number of methods.
    #[inline]
    pub fn method_count(&self) -> usize {
        self.method_names.len()
    }

    /// Metadata for node `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeInfo {
        &self.nodes[n.index()]
    }

    /// Kind of node `n`.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// Name of method `m`.
    pub fn method_name(&self, m: MethodId) -> &str {
        &self.method_names[m.index()]
    }

    /// The program's type table.
    #[inline]
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// All edges flowing **into** `n` (traversed by `PointsTo`).
    #[inline]
    pub fn incoming(&self, n: NodeId) -> &[Edge] {
        let lo = self.in_start[n.index()] as usize;
        let hi = self.in_start[n.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// All edges flowing **out of** `n` (traversed by `FlowsTo`). A direct
    /// CSR slice over the src-sorted edge array — no per-call indirection.
    #[inline]
    pub fn outgoing(&self, n: NodeId) -> &[Edge] {
        let lo = self.out_start[n.index()] as usize;
        let hi = self.out_start[n.index() + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// The incoming edges of `n` whose kind belongs to `class`, as a direct
    /// sub-slice of [`Pag::incoming`] (edges are kind-major per node).
    #[inline]
    pub fn incoming_kind(&self, n: NodeId, class: EdgeClass) -> &[Edge] {
        let k = class as usize;
        let base = n.index() * EDGE_CLASSES;
        let lo = self.in_kind[base + k] as usize;
        let hi = if k + 1 < EDGE_CLASSES {
            self.in_kind[base + k + 1] as usize
        } else {
            self.in_start[n.index() + 1] as usize
        };
        &self.edges[lo..hi]
    }

    /// The outgoing edges of `n` whose kind belongs to `class`, as a direct
    /// sub-slice of [`Pag::outgoing`].
    #[inline]
    pub fn outgoing_kind(&self, n: NodeId, class: EdgeClass) -> &[Edge] {
        let k = class as usize;
        let base = n.index() * EDGE_CLASSES;
        let lo = self.out_kind[base + k] as usize;
        let hi = if k + 1 < EDGE_CLASSES {
            self.out_kind[base + k + 1] as usize
        } else {
            self.out_start[n.index() + 1] as usize
        };
        &self.out_edges[lo..hi]
    }

    /// All store edges on field `f`, as `(base, rhs)` pairs
    /// (statement `base.f = rhs`).
    #[inline]
    pub fn stores_of(&self, f: FieldId) -> &[(NodeId, NodeId)] {
        &self.stores_by_field[f.index()]
    }

    /// All load edges on field `f`, as `(base, dst)` pairs
    /// (statement `dst = base.f`).
    #[inline]
    pub fn loads_of(&self, f: FieldId) -> &[(NodeId, NodeId)] {
        &self.loads_by_field[f.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_usize)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The local variables of application code — the paper's query set
    /// ("queries ... are issued for all the local variables in its
    /// application code").
    pub fn application_locals(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| {
                let info = &self.nodes[n.index()];
                info.is_application && info.kind.is_local()
            })
            .collect()
    }

    /// The bit-packed adjacency rows of this graph (see [`crate::packed`]),
    /// built on first use and cached — clones share the build. Always
    /// coherent with the CSR slices: the graph is immutable once frozen.
    pub fn packed(&self) -> &crate::packed::PackedAdj {
        self.packed
            .get_or_init(|| crate::packed::PackedAdj::build(self))
    }

    /// The raw revision counter (public face: [`Pag::revision`], defined
    /// beside the delta API).
    pub(crate) fn revision_counter(&self) -> u64 {
        self.revision
    }

    /// Clones the mutable parts a delta rebuild starts from.
    pub(crate) fn clone_parts(&self) -> (Vec<NodeInfo>, Vec<Edge>, TypeTable, Vec<String>, u32) {
        (
            self.nodes.clone(),
            self.edges.clone(),
            self.types.clone(),
            self.method_names.clone(),
            self.call_sites,
        )
    }

    /// The packed adjacency, only if it has already been built — the delta
    /// path copies untouched rows from it instead of re-deriving them.
    pub(crate) fn packed_built(&self) -> Option<&crate::packed::PackedAdj> {
        self.packed.get()
    }

    /// Pre-populates the packed-adjacency cache (delta rebuilds). A no-op
    /// if something already built it.
    pub(crate) fn prime_packed(&self, adj: crate::packed::PackedAdj) {
        let _ = self.packed.set(adj);
    }

    /// Looks up a node by name; linear scan, intended for tests and small
    /// examples only.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CallSiteId, TypeId};
    use crate::types::TypeInfo;

    fn mini() -> (Pag, Vec<NodeId>) {
        let mut b = PagBuilder::new();
        let m = b.add_method("main");
        let t = b.types_mut().add_type(TypeInfo {
            name: "T".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let f = b.types_mut().add_field("f");
        let mk = |name: &str, kind: NodeKind| NodeInfo {
            kind,
            ty: t,
            name: name.into(),
            is_application: true,
        };
        let o = b.add_node(mk("o", NodeKind::Object { method: m }));
        let x = b.add_node(mk("x", NodeKind::Local { method: m }));
        let y = b.add_node(mk("y", NodeKind::Local { method: m }));
        let p = b.add_node(mk("p", NodeKind::Local { method: m }));
        b.add_edge(o, x, EdgeKind::New);
        b.add_edge(x, y, EdgeKind::AssignLocal);
        // Duplicate edge must be deduplicated.
        b.add_edge(x, y, EdgeKind::AssignLocal);
        b.add_edge(p, y, EdgeKind::Load(f));
        b.add_edge(p, x, EdgeKind::Store(f));
        (b.freeze(), vec![o, x, y, p])
    }

    #[test]
    fn dedup_and_counts() {
        let (g, _) = mini();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4); // one duplicate removed
    }

    #[test]
    fn incoming_outgoing() {
        let (g, ids) = mini();
        let (o, x, y, p) = (ids[0], ids[1], ids[2], ids[3]);
        let inc_x: Vec<_> = g.incoming(x).iter().map(|e| (e.src, e.kind)).collect();
        // x receives the allocation and the store x.f = p.
        assert_eq!(inc_x.len(), 2);
        assert!(inc_x.contains(&(o, EdgeKind::New)));
        assert!(inc_x
            .iter()
            .any(|&(s, k)| s == p && matches!(k, EdgeKind::Store(_))));
        let inc_y: Vec<_> = g.incoming(y).to_vec();
        assert_eq!(inc_y.len(), 2);
        assert!(inc_y
            .iter()
            .any(|e| e.src == x && e.kind == EdgeKind::AssignLocal));
        let out_p: Vec<_> = g.outgoing(p).iter().map(|e| e.kind).collect();
        assert_eq!(out_p.len(), 2);
        let out_o = g.outgoing(o);
        assert_eq!(out_o.len(), 1);
        assert_eq!(out_o[0].dst, x);
    }

    #[test]
    fn kind_slices_partition_the_range() {
        let (g, ids) = mini();
        let (o, x, y, p) = (ids[0], ids[1], ids[2], ids[3]);
        // x receives a new edge from o and a store from p; nothing else.
        assert_eq!(g.incoming_kind(x, EdgeClass::New).len(), 1);
        assert_eq!(g.incoming_kind(x, EdgeClass::New)[0].src, o);
        assert_eq!(g.incoming_kind(x, EdgeClass::Store).len(), 1);
        assert!(g.incoming_kind(x, EdgeClass::AssignLocal).is_empty());
        // y receives assign_l from x and load from p.
        assert_eq!(g.incoming_kind(y, EdgeClass::AssignLocal).len(), 1);
        assert_eq!(g.incoming_kind(y, EdgeClass::Load).len(), 1);
        // p's outgoing: one load, one store.
        assert_eq!(g.outgoing_kind(p, EdgeClass::Load).len(), 1);
        assert_eq!(g.outgoing_kind(p, EdgeClass::Store).len(), 1);
        assert!(g.outgoing_kind(p, EdgeClass::New).is_empty());
        // For every node the per-class slices concatenate to the full range.
        for n in g.node_ids() {
            let mut concat_in = 0;
            let mut concat_out = 0;
            for k in 0..EDGE_CLASSES {
                let class = match k {
                    0 => EdgeClass::New,
                    1 => EdgeClass::AssignLocal,
                    2 => EdgeClass::AssignGlobal,
                    3 => EdgeClass::Load,
                    4 => EdgeClass::Store,
                    5 => EdgeClass::Param,
                    6 => EdgeClass::Ret,
                    _ => unreachable!(),
                };
                for e in g.incoming_kind(n, class) {
                    assert_eq!(e.kind.class(), class);
                    assert_eq!(e.dst, n);
                }
                for e in g.outgoing_kind(n, class) {
                    assert_eq!(e.kind.class(), class);
                    assert_eq!(e.src, n);
                }
                concat_in += g.incoming_kind(n, class).len();
                concat_out += g.outgoing_kind(n, class).len();
            }
            assert_eq!(concat_in, g.incoming(n).len());
            assert_eq!(concat_out, g.outgoing(n).len());
        }
    }

    #[test]
    fn field_indexes() {
        let (g, ids) = mini();
        let (x, y, p) = (ids[1], ids[2], ids[3]);
        let f = FieldId(1); // first interned after builtin ARR
        assert_eq!(g.loads_of(f), &[(p, y)]); // y = p.f
        assert_eq!(g.stores_of(f), &[(x, p)]); // x.f = p
        assert!(g.loads_of(FieldId::ARR).is_empty());
    }

    #[test]
    fn application_locals_excludes_objects() {
        let (g, _) = mini();
        let app = g.application_locals();
        assert_eq!(app.len(), 3); // x, y, p but not object o
    }

    #[test]
    fn lookup_by_name() {
        let (g, ids) = mini();
        assert_eq!(g.node_by_name("p"), Some(ids[3]));
        assert_eq!(g.node_by_name("zzz"), None);
    }

    #[test]
    fn call_site_allocation() {
        let mut b = PagBuilder::new();
        assert_eq!(b.fresh_call_site(), CallSiteId(0));
        assert_eq!(b.fresh_call_site(), CallSiteId(1));
        let g = b.freeze();
        assert_eq!(g.call_site_count(), 2);
    }

    #[test]
    fn type_table_passthrough() {
        let mut tt = TypeTable::new();
        tt.add_type(TypeInfo {
            name: "X".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let b = PagBuilder::with_types(tt);
        let g = b.freeze();
        assert_eq!(g.types().len(), 1);
        assert_eq!(g.types().get(TypeId(0)).name, "X");
    }
}

//! The frozen Pointer Assignment Graph and its builder.
//!
//! The graph is built once by the frontend (or the synthetic generator) and
//! then frozen into an immutable, cache-friendly CSR representation that is
//! shared read-only by all query-processing threads. The `jmp` shortcut
//! edges of the paper's extended PAG (Fig. 4) are *not* stored here — they
//! are added on the fly during the analysis and live in the solver's
//! concurrent jmp store, which overlays this read-only graph.

use crate::edge::{Edge, EdgeKind};
use crate::ids::{FieldId, MethodId, NodeId};
use crate::node::{NodeInfo, NodeKind};
use crate::types::TypeTable;

/// Mutable accumulator for PAG construction.
#[derive(Default)]
pub struct PagBuilder {
    nodes: Vec<NodeInfo>,
    edges: Vec<Edge>,
    types: TypeTable,
    method_names: Vec<String>,
    call_sites: u32,
}

impl PagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        PagBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            types: TypeTable::new(),
            method_names: Vec::new(),
            call_sites: 0,
        }
    }

    /// Creates a builder that takes ownership of an already-populated type
    /// table (the frontend interns types while parsing).
    pub fn with_types(types: TypeTable) -> Self {
        PagBuilder {
            types,
            ..PagBuilder::new()
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, info: NodeInfo) -> NodeId {
        let id = NodeId::from_usize(self.nodes.len());
        self.nodes.push(info);
        id
    }

    /// Adds an edge between existing nodes.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) {
        debug_assert!(src.index() < self.nodes.len(), "src out of range");
        debug_assert!(dst.index() < self.nodes.len(), "dst out of range");
        self.edges.push(Edge { src, dst, kind });
    }

    /// Registers a method name and returns its id.
    pub fn add_method(&mut self, name: impl Into<String>) -> MethodId {
        let id = MethodId::from_usize(self.method_names.len());
        self.method_names.push(name.into());
        id
    }

    /// Allocates a fresh call-site id.
    pub fn fresh_call_site(&mut self) -> crate::ids::CallSiteId {
        let id = crate::ids::CallSiteId::new(self.call_sites);
        self.call_sites += 1;
        id
    }

    /// Read access to the type table during construction.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Mutable access to the type table during construction.
    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`Pag`], deduplicating edges
    /// and constructing the traversal indexes.
    pub fn freeze(mut self) -> Pag {
        let n = self.nodes.len();

        // Deduplicate edges: duplicate statements add nothing to
        // reachability and only slow traversals down.
        self.edges
            .sort_unstable_by_key(|e| (e.dst, e.src, edge_sort_key(e.kind)));
        self.edges.dedup();
        let m = self.edges.len();

        // Incoming CSR (edges sorted by dst already).
        let mut in_start = vec![0u32; n + 1];
        for e in &self.edges {
            in_start[e.dst.index() + 1] += 1;
        }
        for i in 1..=n {
            in_start[i] += in_start[i - 1];
        }
        // self.edges is the in-order edge array itself.

        // Outgoing CSR: indices into `edges`, sorted by src.
        let mut out_deg = vec![0u32; n + 1];
        for e in &self.edges {
            out_deg[e.src.index() + 1] += 1;
        }
        for i in 1..=n {
            out_deg[i] += out_deg[i - 1];
        }
        let out_start = out_deg.clone();
        let mut cursor = out_deg;
        let mut out_edges = vec![0u32; m];
        for (idx, e) in self.edges.iter().enumerate() {
            out_edges[cursor[e.src.index()] as usize] = idx as u32;
            cursor[e.src.index()] += 1;
        }

        // Field indexes for the alias-matching step of ReachableNodes.
        let nf = self.types.field_count();
        let mut loads_by_field: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); nf];
        let mut stores_by_field: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); nf];
        for e in &self.edges {
            match e.kind {
                // Load dst = src.f: base is src.
                EdgeKind::Load(f) => loads_by_field[f.index()].push((e.src, e.dst)),
                // Store dst.f = src: base is dst.
                EdgeKind::Store(f) => stores_by_field[f.index()].push((e.dst, e.src)),
                _ => {}
            }
        }

        Pag {
            nodes: self.nodes,
            edges: self.edges,
            in_start,
            out_start,
            out_edges,
            loads_by_field,
            stores_by_field,
            types: self.types,
            method_names: self.method_names,
            call_sites: self.call_sites,
        }
    }
}

/// Total order over edge kinds used for deterministic dedup.
fn edge_sort_key(kind: EdgeKind) -> (u8, u32) {
    match kind {
        EdgeKind::New => (0, 0),
        EdgeKind::AssignLocal => (1, 0),
        EdgeKind::AssignGlobal => (2, 0),
        EdgeKind::Load(f) => (3, f.raw()),
        EdgeKind::Store(f) => (4, f.raw()),
        EdgeKind::Param(i) => (5, i.raw()),
        EdgeKind::Ret(i) => (6, i.raw()),
    }
}

/// The frozen, immutable Pointer Assignment Graph.
#[derive(Clone, Debug)]
pub struct Pag {
    nodes: Vec<NodeInfo>,
    /// All edges, sorted by `dst` (this *is* the incoming-edge array).
    edges: Vec<Edge>,
    in_start: Vec<u32>,
    out_start: Vec<u32>,
    out_edges: Vec<u32>,
    loads_by_field: Vec<Vec<(NodeId, NodeId)>>,
    stores_by_field: Vec<Vec<(NodeId, NodeId)>>,
    types: TypeTable,
    method_names: Vec<String>,
    call_sites: u32,
}

impl Pag {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of call sites.
    #[inline]
    pub fn call_site_count(&self) -> usize {
        self.call_sites as usize
    }

    /// Number of methods.
    #[inline]
    pub fn method_count(&self) -> usize {
        self.method_names.len()
    }

    /// Metadata for node `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeInfo {
        &self.nodes[n.index()]
    }

    /// Kind of node `n`.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// Name of method `m`.
    pub fn method_name(&self, m: MethodId) -> &str {
        &self.method_names[m.index()]
    }

    /// The program's type table.
    #[inline]
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// All edges flowing **into** `n` (traversed by `PointsTo`).
    #[inline]
    pub fn incoming(&self, n: NodeId) -> &[Edge] {
        let lo = self.in_start[n.index()] as usize;
        let hi = self.in_start[n.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// All edges flowing **out of** `n` (traversed by `FlowsTo`).
    #[inline]
    pub fn outgoing(&self, n: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        let lo = self.out_start[n.index()] as usize;
        let hi = self.out_start[n.index() + 1] as usize;
        self.out_edges[lo..hi]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// All store edges on field `f`, as `(base, rhs)` pairs
    /// (statement `base.f = rhs`).
    #[inline]
    pub fn stores_of(&self, f: FieldId) -> &[(NodeId, NodeId)] {
        &self.stores_by_field[f.index()]
    }

    /// All load edges on field `f`, as `(base, dst)` pairs
    /// (statement `dst = base.f`).
    #[inline]
    pub fn loads_of(&self, f: FieldId) -> &[(NodeId, NodeId)] {
        &self.loads_by_field[f.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_usize)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The local variables of application code — the paper's query set
    /// ("queries ... are issued for all the local variables in its
    /// application code").
    pub fn application_locals(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| {
                let info = &self.nodes[n.index()];
                info.is_application && info.kind.is_local()
            })
            .collect()
    }

    /// Looks up a node by name; linear scan, intended for tests and small
    /// examples only.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CallSiteId, TypeId};
    use crate::types::TypeInfo;

    fn mini() -> (Pag, Vec<NodeId>) {
        let mut b = PagBuilder::new();
        let m = b.add_method("main");
        let t = b.types_mut().add_type(TypeInfo {
            name: "T".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let f = b.types_mut().add_field("f");
        let mk = |name: &str, kind: NodeKind| NodeInfo {
            kind,
            ty: t,
            name: name.into(),
            is_application: true,
        };
        let o = b.add_node(mk("o", NodeKind::Object { method: m }));
        let x = b.add_node(mk("x", NodeKind::Local { method: m }));
        let y = b.add_node(mk("y", NodeKind::Local { method: m }));
        let p = b.add_node(mk("p", NodeKind::Local { method: m }));
        b.add_edge(o, x, EdgeKind::New);
        b.add_edge(x, y, EdgeKind::AssignLocal);
        // Duplicate edge must be deduplicated.
        b.add_edge(x, y, EdgeKind::AssignLocal);
        b.add_edge(p, y, EdgeKind::Load(f));
        b.add_edge(p, x, EdgeKind::Store(f));
        (b.freeze(), vec![o, x, y, p])
    }

    #[test]
    fn dedup_and_counts() {
        let (g, _) = mini();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4); // one duplicate removed
    }

    #[test]
    fn incoming_outgoing() {
        let (g, ids) = mini();
        let (o, x, y, p) = (ids[0], ids[1], ids[2], ids[3]);
        let inc_x: Vec<_> = g.incoming(x).iter().map(|e| (e.src, e.kind)).collect();
        // x receives the allocation and the store x.f = p.
        assert_eq!(inc_x.len(), 2);
        assert!(inc_x.contains(&(o, EdgeKind::New)));
        assert!(inc_x
            .iter()
            .any(|&(s, k)| s == p && matches!(k, EdgeKind::Store(_))));
        let inc_y: Vec<_> = g.incoming(y).to_vec();
        assert_eq!(inc_y.len(), 2);
        assert!(inc_y
            .iter()
            .any(|e| e.src == x && e.kind == EdgeKind::AssignLocal));
        let out_p: Vec<_> = g.outgoing(p).map(|e| e.kind).collect();
        assert_eq!(out_p.len(), 2);
        let out_o: Vec<_> = g.outgoing(o).collect();
        assert_eq!(out_o.len(), 1);
        assert_eq!(out_o[0].dst, x);
    }

    #[test]
    fn field_indexes() {
        let (g, ids) = mini();
        let (x, y, p) = (ids[1], ids[2], ids[3]);
        let f = FieldId(1); // first interned after builtin ARR
        assert_eq!(g.loads_of(f), &[(p, y)]); // y = p.f
        assert_eq!(g.stores_of(f), &[(x, p)]); // x.f = p
        assert!(g.loads_of(FieldId::ARR).is_empty());
    }

    #[test]
    fn application_locals_excludes_objects() {
        let (g, _) = mini();
        let app = g.application_locals();
        assert_eq!(app.len(), 3); // x, y, p but not object o
    }

    #[test]
    fn lookup_by_name() {
        let (g, ids) = mini();
        assert_eq!(g.node_by_name("p"), Some(ids[3]));
        assert_eq!(g.node_by_name("zzz"), None);
    }

    #[test]
    fn call_site_allocation() {
        let mut b = PagBuilder::new();
        assert_eq!(b.fresh_call_site(), CallSiteId(0));
        assert_eq!(b.fresh_call_site(), CallSiteId(1));
        let g = b.freeze();
        assert_eq!(g.call_site_count(), 2);
    }

    #[test]
    fn type_table_passthrough() {
        let mut tt = TypeTable::new();
        tt.add_type(TypeInfo {
            name: "X".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let b = PagBuilder::with_types(tt);
        let g = b.freeze();
        assert_eq!(g.types().len(), 1);
        assert_eq!(g.types().get(TypeId(0)).name, "X");
    }
}

//! A lightweight table of the analysed program's types.
//!
//! Query scheduling (paper Section III-C2) estimates dependences between
//! variables from their static types: the *level* `L(t)` of a type is the
//! height of its field-containment hierarchy (modulo recursion), and the
//! dependence depth of a variable of type `t` is `1/L(t)`.
//!
//! The table is produced by the frontend and consumed by the scheduler, so
//! it lives here in the shared `pag` crate.

use crate::ids::{FieldId, TypeId};

/// Metadata for one type of the analysed program.
#[derive(Clone, Debug)]
pub struct TypeInfo {
    /// Human-readable name (class name, or primitive name).
    pub name: String,
    /// Whether the type is a reference type (class/array). Primitive types
    /// have `L(t) = 0`.
    pub is_ref: bool,
    /// Instance fields: `(field, declared type)` pairs. Only reference-typed
    /// fields influence `L(t)`, but all are recorded.
    pub fields: Vec<(FieldId, TypeId)>,
    /// Direct superclass, if any (used by the frontend's CHA).
    pub supertype: Option<TypeId>,
}

/// The table of all types, indexed by [`TypeId`].
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    types: Vec<TypeInfo>,
    field_names: Vec<String>,
}

impl TypeTable {
    /// Creates an empty table with the distinguished `arr` field predeclared
    /// at [`FieldId::ARR`].
    pub fn new() -> Self {
        TypeTable {
            types: Vec::new(),
            field_names: vec!["arr".to_string()],
        }
    }

    /// Adds a type and returns its id.
    pub fn add_type(&mut self, info: TypeInfo) -> TypeId {
        let id = TypeId::from_usize(self.types.len());
        self.types.push(info);
        id
    }

    /// Adds (interns) a field name and returns its id.
    pub fn add_field(&mut self, name: impl Into<String>) -> FieldId {
        let id = FieldId::from_usize(self.field_names.len());
        self.field_names.push(name.into());
        id
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the table holds no types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of interned field names (including the builtin `arr`).
    pub fn field_count(&self) -> usize {
        self.field_names.len()
    }

    /// Looks up a type.
    pub fn get(&self, id: TypeId) -> &TypeInfo {
        &self.types[id.index()]
    }

    /// Mutable lookup (the frontend patches fields in as it parses).
    pub fn get_mut(&mut self, id: TypeId) -> &mut TypeInfo {
        &mut self.types[id.index()]
    }

    /// Looks up a field name.
    pub fn field_name(&self, id: FieldId) -> &str {
        &self.field_names[id.index()]
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeInfo)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (TypeId::from_usize(i), t))
    }

    /// Computes `L(t)` for every type:
    ///
    /// ```text
    /// L(t) = max_{t_i in FT(t)} L(t_i) + 1   if isRef(t)
    /// L(t) = 0                               otherwise
    /// ```
    ///
    /// "Modulo recursion": mutually recursive types form cycles in the
    /// field-reference graph; all members of a strongly connected component
    /// receive the same level, computed as if the intra-component field
    /// references contributed no extra height.
    pub fn levels(&self) -> Vec<u32> {
        let n = self.types.len();
        // Field-reference graph: t -> type of each reference-typed field.
        let succ: Vec<Vec<usize>> = self
            .types
            .iter()
            .map(|t| {
                if !t.is_ref {
                    return Vec::new();
                }
                t.fields
                    .iter()
                    .filter(|(_, ft)| self.types[ft.index()].is_ref)
                    .map(|(_, ft)| ft.index())
                    .collect()
            })
            .collect();

        let scc = crate::algo::tarjan_scc(n, |v| succ[v].iter().copied());
        // Components are emitted in reverse topological order by Tarjan:
        // every successor's component is finished before its predecessors'.
        // Walk components in that order so successor levels are ready.
        let mut level = vec![0u32; n];
        let mut comp_level = vec![0u32; scc.component_count()];
        for comp in 0..scc.component_count() {
            let members: Vec<usize> = scc.members_usize(comp).collect();
            let mut best = 0u32;
            let mut any_ref = false;
            for &v in &members {
                if !self.types[v].is_ref {
                    continue;
                }
                any_ref = true;
                for &s in &succ[v] {
                    let sc = scc.component_of(s);
                    if sc != comp {
                        best = best.max(comp_level[sc]);
                    }
                }
            }
            let l = if any_ref { best + 1 } else { 0 };
            comp_level[comp] = l;
            for &v in &members {
                level[v] = if self.types[v].is_ref { l } else { 0 };
            }
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(name: &str, is_ref: bool) -> TypeInfo {
        TypeInfo {
            name: name.to_string(),
            is_ref,
            fields: Vec::new(),
            supertype: None,
        }
    }

    #[test]
    fn interning_and_lookup() {
        let mut t = TypeTable::new();
        assert_eq!(t.field_name(FieldId::ARR), "arr");
        let f = t.add_field("elems");
        assert_eq!(t.field_name(f), "elems");
        let a = t.add_type(ty("A", true));
        assert_eq!(t.get(a).name, "A");
        assert_eq!(t.len(), 1);
        assert_eq!(t.field_count(), 2);
    }

    #[test]
    fn levels_flat_hierarchy() {
        let mut t = TypeTable::new();
        let prim = t.add_type(ty("int", false));
        let leaf = t.add_type(ty("Leaf", true)); // no ref fields: L = 1
        let f = t.add_field("x");
        let mid = t.add_type(TypeInfo {
            name: "Mid".into(),
            is_ref: true,
            fields: vec![(f, leaf)],
            supertype: None,
        });
        let g = t.add_field("y");
        let top = t.add_type(TypeInfo {
            name: "Top".into(),
            is_ref: true,
            fields: vec![(g, mid), (f, prim)],
            supertype: None,
        });
        let lv = t.levels();
        assert_eq!(lv[prim.index()], 0);
        assert_eq!(lv[leaf.index()], 1);
        assert_eq!(lv[mid.index()], 2);
        assert_eq!(lv[top.index()], 3);
    }

    #[test]
    fn levels_recursive_types_collapse() {
        // LinkedList { next: LinkedList, elem: Obj } — recursion must not
        // make L infinite; the SCC is treated as one level above `Obj`.
        let mut t = TypeTable::new();
        let obj = t.add_type(ty("Obj", true));
        let fnext = t.add_field("next");
        let felem = t.add_field("elem");
        let list = t.add_type(TypeInfo {
            name: "LinkedList".into(),
            is_ref: true,
            fields: vec![(felem, obj)],
            supertype: None,
        });
        // Patch in the self-recursive field after creation.
        let list_idx = list;
        t.get_mut(list_idx).fields.push((fnext, list));
        let lv = t.levels();
        assert_eq!(lv[obj.index()], 1);
        assert_eq!(lv[list.index()], 2);
    }

    #[test]
    fn levels_mutual_recursion() {
        let mut t = TypeTable::new();
        let f = t.add_field("f");
        let a = t.add_type(ty("A", true));
        let b = t.add_type(ty("B", true));
        t.get_mut(a).fields.push((f, b));
        t.get_mut(b).fields.push((f, a));
        let lv = t.levels();
        // A and B are in one SCC: both get the same finite level.
        assert_eq!(lv[a.index()], lv[b.index()]);
        assert_eq!(lv[a.index()], 1);
    }
}

//! Summary statistics over a frozen PAG (the structural columns of the
//! paper's Table I).

use crate::edge::EdgeKind;
use crate::graph::Pag;

/// Structural statistics of a PAG.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PagStats {
    /// Total node count (Table I column "#Nodes").
    pub nodes: usize,
    /// Total edge count (Table I column "#Edges").
    pub edges: usize,
    /// Local-variable nodes.
    pub locals: usize,
    /// Global-variable nodes.
    pub globals: usize,
    /// Object nodes.
    pub objects: usize,
    /// `new` edges.
    pub new_edges: usize,
    /// `assign_l` edges.
    pub assign_local: usize,
    /// `assign_g` edges.
    pub assign_global: usize,
    /// `ld(f)` edges.
    pub loads: usize,
    /// `st(f)` edges.
    pub stores: usize,
    /// `param_i` edges.
    pub params: usize,
    /// `ret_i` edges.
    pub rets: usize,
    /// Call sites.
    pub call_sites: usize,
    /// Methods.
    pub methods: usize,
}

impl PagStats {
    /// Computes statistics for `pag`.
    pub fn of(pag: &Pag) -> Self {
        let mut s = PagStats {
            nodes: pag.node_count(),
            edges: pag.edge_count(),
            call_sites: pag.call_site_count(),
            methods: pag.method_count(),
            ..PagStats::default()
        };
        for n in pag.node_ids() {
            let k = pag.kind(n);
            if k.is_local() {
                s.locals += 1;
            } else if k.is_global() {
                s.globals += 1;
            } else {
                s.objects += 1;
            }
        }
        for e in pag.edges() {
            match e.kind {
                EdgeKind::New => s.new_edges += 1,
                EdgeKind::AssignLocal => s.assign_local += 1,
                EdgeKind::AssignGlobal => s.assign_global += 1,
                EdgeKind::Load(_) => s.loads += 1,
                EdgeKind::Store(_) => s.stores += 1,
                EdgeKind::Param(_) => s.params += 1,
                EdgeKind::Ret(_) => s.rets += 1,
            }
        }
        s
    }
}

impl std::fmt::Display for PagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} (locals={}, globals={}, objects={}), edges={} \
             (new={}, assign_l={}, assign_g={}, ld={}, st={}, param={}, ret={}), \
             methods={}, call_sites={}",
            self.nodes,
            self.locals,
            self.globals,
            self.objects,
            self.edges,
            self.new_edges,
            self.assign_local,
            self.assign_global,
            self.loads,
            self.stores,
            self.params,
            self.rets,
            self.methods,
            self.call_sites,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PagBuilder;
    use crate::ids::TypeId;
    use crate::node::{NodeInfo, NodeKind};

    #[test]
    fn counts_by_kind() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m");
        let f = b.types_mut().add_field("f");
        let node = |b: &mut PagBuilder, kind| {
            b.add_node(NodeInfo {
                kind,
                ty: TypeId(0),
                name: String::new(),
                is_application: false,
            })
        };
        let o = node(&mut b, NodeKind::Object { method: m });
        let l1 = node(&mut b, NodeKind::Local { method: m });
        let l2 = node(&mut b, NodeKind::Local { method: m });
        let g = node(&mut b, NodeKind::Global);
        b.add_edge(o, l1, EdgeKind::New);
        b.add_edge(l1, l2, EdgeKind::AssignLocal);
        b.add_edge(l2, g, EdgeKind::AssignGlobal);
        b.add_edge(l1, l2, EdgeKind::Load(f));
        let i = b.fresh_call_site();
        b.add_edge(l2, l1, EdgeKind::Param(i));
        let s = PagStats::of(&b.freeze());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.locals, 2);
        assert_eq!(s.globals, 1);
        assert_eq!(s.objects, 1);
        assert_eq!(s.edges, 5);
        assert_eq!(s.new_edges, 1);
        assert_eq!(s.assign_local, 1);
        assert_eq!(s.assign_global, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.params, 1);
        assert_eq!(s.stores, 0);
        assert_eq!(s.call_sites, 1);
        assert_eq!(s.methods, 1);
        // Display must mention every count without panicking.
        let txt = s.to_string();
        assert!(txt.contains("nodes=4"));
        assert!(txt.contains("param=1"));
    }
}

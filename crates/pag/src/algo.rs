//! Graph utility algorithms shared by the frontend (call-graph and
//! points-to-cycle collapsing) and the scheduler (grouping, connection
//! distances): Tarjan's SCC, DAG condensation helpers, longest paths in a
//! DAG, and a union-find.

/// The result of running Tarjan's algorithm: a mapping from vertices to
/// strongly connected components, with components numbered in **reverse
/// topological order** (if `u`'s component precedes `v`'s and `u -> v`, then
/// `comp(v) <= comp(u)`).
#[derive(Clone, Debug)]
pub struct SccResult {
    comp: Vec<u32>,
    comp_count: u32,
    // Members grouped by component: CSR layout.
    member_start: Vec<u32>,
    members: Vec<u32>,
}

impl SccResult {
    /// Component index of vertex `v`.
    #[inline]
    pub fn component_of(&self, v: usize) -> usize {
        self.comp[v] as usize
    }

    /// Number of components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.comp_count as usize
    }

    /// Vertices in component `c`.
    pub fn members(&self, c: usize) -> &[u32] {
        let lo = self.member_start[c] as usize;
        let hi = self.member_start[c + 1] as usize;
        &self.members[lo..hi]
    }

    /// Iterator over members of `c` as `usize`.
    pub fn members_usize(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.members(c).iter().map(|&v| v as usize)
    }

    /// Whether vertex `v` is in a non-trivial cycle: its component has more
    /// than one member, or it has a self-loop (the caller must check
    /// self-loops separately; this only reports component size).
    pub fn in_multi_member_component(&self, v: usize) -> bool {
        let c = self.comp[v] as usize;
        (self.member_start[c + 1] - self.member_start[c]) > 1
    }
}

/// Iterative Tarjan SCC over a graph with `n` vertices whose successors are
/// produced by `succ`. Runs in `O(V + E)` without recursion (safe for the
/// deep graphs produced by large benchmarks).
pub fn tarjan_scc<I, F>(n: usize, succ: F) -> SccResult
where
    F: Fn(usize) -> I,
    I: Iterator<Item = usize>,
{
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS frames: (vertex, iterator over its successors).
    enum Frame<I> {
        Enter(usize),
        Resume(usize, I),
    }
    let mut call: Vec<Frame<I>> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push(Frame::Enter(root));
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v as u32);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, succ(v)));
                }
                Frame::Resume(v, mut it) => {
                    let mut descended = false;
                    while let Some(w) = it.next() {
                        if index[w] == UNVISITED {
                            call.push(Frame::Resume(v, it));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: maybe pop a component.
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow") as usize;
                            on_stack[w] = false;
                            comp[w] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    // Propagate lowlink to parent frame.
                    if let Some(Frame::Resume(p, _)) = call.last() {
                        let p = *p;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }

    // Build CSR member lists.
    let mut counts = vec![0u32; comp_count as usize + 1];
    for &c in &comp {
        counts[c as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let member_start = counts.clone();
    let mut cursor = counts;
    let mut members = vec![0u32; n];
    for (v, &c) in comp.iter().enumerate() {
        members[cursor[c as usize] as usize] = v as u32;
        cursor[c as usize] += 1;
    }

    SccResult {
        comp,
        comp_count,
        member_start,
        members,
    }
}

/// Longest path lengths through each vertex of a **DAG** given as an edge
/// list over `n` vertices. Returns, for every vertex, the length (in edges)
/// of the longest path that passes through it: `longest_in(v) +
/// longest_out(v)`.
///
/// The scheduler uses this on SCC condensations to compute connection
/// distances "modulo recursion" (paper Section III-C2).
pub fn longest_path_through(n: usize, edges: &[(u32, u32)]) -> Vec<u64> {
    // CSR for successors and predecessors plus indegrees for Kahn's order.
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    for &(u, v) in edges {
        debug_assert_ne!(u, v, "longest_path_through requires a DAG (self-loop)");
        out_deg[u as usize] += 1;
        in_deg[v as usize] += 1;
    }
    let mut out_start = vec![0u32; n + 1];
    for v in 0..n {
        out_start[v + 1] = out_start[v] + out_deg[v];
    }
    let mut out_adj = vec![0u32; edges.len()];
    let mut cursor = out_start.clone();
    for &(u, v) in edges {
        out_adj[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
    }

    // Topological order by Kahn's algorithm.
    let mut order = Vec::with_capacity(n);
    let mut indeg = in_deg.clone();
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    while let Some(v) = queue.pop() {
        order.push(v);
        let lo = out_start[v as usize] as usize;
        let hi = out_start[v as usize + 1] as usize;
        for &w in &out_adj[lo..hi] {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    assert_eq!(
        order.len(),
        n,
        "longest_path_through requires a DAG (cycle)"
    );

    // longest_in via forward pass, longest_out via reverse pass.
    let mut lin = vec![0u64; n];
    for &v in &order {
        let lo = out_start[v as usize] as usize;
        let hi = out_start[v as usize + 1] as usize;
        for &w in &out_adj[lo..hi] {
            let cand = lin[v as usize] + 1;
            if cand > lin[w as usize] {
                lin[w as usize] = cand;
            }
        }
    }
    let mut lout = vec![0u64; n];
    for &v in order.iter().rev() {
        let lo = out_start[v as usize] as usize;
        let hi = out_start[v as usize + 1] as usize;
        for &w in &out_adj[lo..hi] {
            let cand = lout[w as usize] + 1;
            if cand > lout[v as usize] {
                lout[v as usize] = cand;
            }
        }
    }

    (0..n).map(|v| lin[v] + lout[v]).collect()
}

/// A path-compressing, union-by-rank disjoint-set forest.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        big
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(edges: &[(usize, usize)], n: usize) -> Vec<Vec<usize>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u].push(v);
        }
        a
    }

    #[test]
    fn scc_simple_cycle() {
        let a = adj(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let scc = tarjan_scc(4, |v| a[v].iter().copied());
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(1), scc.component_of(2));
        assert_ne!(scc.component_of(0), scc.component_of(3));
        // Reverse topological order: 3's component is emitted first.
        assert!(scc.component_of(3) < scc.component_of(0));
        assert!(scc.in_multi_member_component(0));
        assert!(!scc.in_multi_member_component(3));
    }

    #[test]
    fn scc_disconnected_and_singletons() {
        let a = adj(&[(0, 1)], 3);
        let scc = tarjan_scc(3, |v| a[v].iter().copied());
        assert_eq!(scc.component_count(), 3);
        // 1 must finish before 0 (reverse topological).
        assert!(scc.component_of(1) < scc.component_of(0));
        let m: Vec<_> = scc.members_usize(scc.component_of(2)).collect();
        assert_eq!(m, vec![2]);
    }

    #[test]
    fn scc_deep_chain_no_stack_overflow() {
        // A 200k-long chain would overflow a recursive implementation.
        let n = 200_000;
        let scc = tarjan_scc(n, |v| {
            let next = v + 1;
            (next < n).then_some(next).into_iter()
        });
        assert_eq!(scc.component_count(), n);
    }

    #[test]
    fn scc_two_cycles_bridge() {
        let a = adj(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let scc = tarjan_scc(4, |v| a[v].iter().copied());
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
    }

    #[test]
    fn longest_path_chain() {
        // 0 -> 1 -> 2 -> 3: every vertex lies on the length-3 path.
        let lp = longest_path_through(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(lp, vec![3, 3, 3, 3]);
    }

    #[test]
    fn longest_path_diamond_with_tail() {
        // 0 -> {1,2} -> 3 -> 4, plus a lone vertex 5.
        let lp = longest_path_through(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        assert_eq!(lp[0], 3);
        assert_eq!(lp[1], 3);
        assert_eq!(lp[3], 3);
        assert_eq!(lp[4], 3);
        assert_eq!(lp[5], 0);
    }

    #[test]
    #[should_panic(expected = "requires a DAG")]
    fn longest_path_rejects_cycles() {
        longest_path_through(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.same(0, 1));
        assert!(uf.same(3, 4));
        assert!(!uf.same(1, 3));
        uf.union(1, 4);
        assert!(uf.same(0, 3));
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn union_find_idempotent_union() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
    }
}

//! Bit-packed adjacency rows for the matrix engine's frontier sweeps
//! (DESIGN.md §11).
//!
//! The whole-program backend applies one edge class to every set bit of a
//! frontier. With the kind-major CSR that is a per-bit walk over a scalar
//! edge slice; with a **packed row** it is a word-level OR: each node with
//! at least one edge of the class owns a dense node-indexed bitset row
//! (`words[i]` covers node ids `i*64..`, the same flat-word layout as
//! `parcfl-concurrent`'s chunked bitsets), and applying the class to a
//! frontier bit becomes `scratch |= row` — one branchless pass the chunk
//! kernels consume directly.
//!
//! Only the **payload-free** classes pack (`new`, `assign_l`, `assign_g`):
//! loads/stores carry a field and params/rets carry a call site, so their
//! targets are not a plain successor set. The density heuristic is
//! two-level. Per class, [`PackedAdj::should_pack`] keeps sparse classes
//! and very large graphs on the CSR slices entirely (packing pays
//! `node_count / 64` words per stored row). Per row, only nodes with at
//! least [`ROW_MIN_BITS`] successors get a row: at the one-to-two edges
//! per node typical of PAGs, a scalar insert beats ORing a whole
//! `stride`-word row, so thin rows fall back to the slice walk and only
//! genuinely fat rows (globals, factory allocation sites) gather.
//! Either representation yields exactly the same successor sets — the
//! `dense_props` proptests and the fuzzer's `packed` dimension enforce
//! that bit-for-bit.

use crate::edge::{EdgeClass, EDGE_CLASSES};
use crate::graph::Pag;
use crate::ids::NodeId;

/// `row_of` marker for nodes with no edges of the class (no row storage).
const NO_ROW: u32 = u32::MAX;

/// Graphs beyond this many nodes never pack: a single row would span more
/// than 64 cache lines, past the point where gather/OR beats the CSR walk
/// for the edge counts the matrix engine dispatches on (`matrix_pays_off`
/// caps nodes well below this anyway; the guard keeps direct
/// `MatrixSolver` users on huge graphs safe from quadratic row storage).
pub const MAX_PACKED_NODES: usize = 4096;

/// A class packs when `edges * PACK_DENSITY >= node_count`: below one edge
/// per `PACK_DENSITY` nodes, rows are mostly zero words and the scalar
/// slice walk is already cheaper than touching the row.
pub const PACK_DENSITY: usize = 8;

/// The number of packable (payload-free) edge classes: `new`, `assign_l`,
/// `assign_g` — [`EdgeClass`] discriminants 0..3.
pub const PACKED_CLASSES: usize = 3;

/// A row is stored only when it holds at least this many successors.
/// Below it, gathering a `stride`-word row costs more than the handful of
/// per-edge scalar inserts it replaces, so thin rows stay on the CSR walk
/// (the scan falls back per row, not per class). Break-even sits around
/// one 8-word kernel group of ORs per ~1 insert saved.
pub const ROW_MIN_BITS: u32 = 4;

/// Packed successor rows of one edge class in one direction.
///
/// Rows exist only for nodes with at least [`ROW_MIN_BITS`] successors of
/// the class; thinner rows (and empty ones) report `None` from
/// [`PackedClass::row`] and the scan walks the node's CSR slice instead.
/// Either path produces identical scratch contents, so the per-row choice
/// is invisible to every observable.
#[derive(Debug)]
pub struct PackedClass {
    /// Words per row: `node_count.div_ceil(64)`.
    stride: u32,
    /// Node id → row index, or [`NO_ROW`].
    row_of: Vec<u32>,
    /// Row storage, `rows * stride` words; word `i` of a row covers node
    /// ids `i*64 .. i*64+64`, bit `j` = id `i*64 + j`.
    words: Vec<u64>,
}

impl PackedClass {
    /// Builds one direction of one class: `edges_of` feeds the successor
    /// ids of each node (ascending node order fixes the row order).
    fn build(n: usize, mut edges_of: impl FnMut(NodeId, &mut dyn FnMut(u32))) -> PackedClass {
        let stride = n.div_ceil(64).max(1);
        let mut row_of = vec![NO_ROW; n];
        let mut words: Vec<u64> = Vec::new();
        for (node, row) in row_of.iter_mut().enumerate() {
            let start = words.len();
            let mut created = false;
            edges_of(NodeId::from_usize(node), &mut |succ: u32| {
                if !created {
                    words.resize(start + stride, 0);
                    created = true;
                }
                words[start + succ as usize / 64] |= 1u64 << (succ % 64);
            });
            if created {
                let bits: u32 = words[start..].iter().map(|w| w.count_ones()).sum();
                if bits >= ROW_MIN_BITS {
                    *row = (start / stride) as u32;
                } else {
                    words.truncate(start);
                }
            }
        }
        PackedClass {
            stride: stride as u32,
            row_of,
            words,
        }
    }

    /// Rebuilds one direction of one class after a delta: rows of nodes in
    /// `dirty` are re-derived through `edges_of`, every other row is copied
    /// verbatim from `old` (its edge set is unchanged, so the copied words
    /// are exactly what a fresh build would produce). Appending in
    /// ascending node order reproduces the fresh build's storage layout
    /// bit-for-bit. `old` must come from a graph with the same node count.
    fn rebuild_from(
        old: &PackedClass,
        n: usize,
        dirty: &std::collections::HashSet<u32>,
        mut edges_of: impl FnMut(NodeId, &mut dyn FnMut(u32)),
    ) -> PackedClass {
        let stride = n.div_ceil(64).max(1);
        debug_assert_eq!(stride, old.stride as usize, "node space changed");
        let mut row_of = vec![NO_ROW; n];
        let mut words: Vec<u64> = Vec::new();
        for (node, row) in row_of.iter_mut().enumerate() {
            let start = words.len();
            if !dirty.contains(&(node as u32)) {
                if let Some(old_row) = old.row(node as u32) {
                    words.extend_from_slice(old_row);
                    *row = (start / stride) as u32;
                }
                continue;
            }
            let mut created = false;
            edges_of(NodeId::from_usize(node), &mut |succ: u32| {
                if !created {
                    words.resize(start + stride, 0);
                    created = true;
                }
                words[start + succ as usize / 64] |= 1u64 << (succ % 64);
            });
            if created {
                let bits: u32 = words[start..].iter().map(|w| w.count_ones()).sum();
                if bits >= ROW_MIN_BITS {
                    *row = (start / stride) as u32;
                } else {
                    words.truncate(start);
                }
            }
        }
        PackedClass {
            stride: stride as u32,
            row_of,
            words,
        }
    }

    /// The packed successor row of node `n`, or `None` when `n` has fewer
    /// than [`ROW_MIN_BITS`] successors of this class (thin and empty rows
    /// are never stored — the caller walks the CSR slice). The slice is
    /// `stride` words long; word `i` covers ids `i*64..`.
    #[inline]
    pub fn row(&self, n: u32) -> Option<&[u64]> {
        let r = self.row_of[n as usize];
        if r == NO_ROW {
            return None;
        }
        let s = self.stride as usize;
        let lo = r as usize * s;
        Some(&self.words[lo..lo + s])
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride as usize
    }

    /// Total `u64` words of row storage.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// The per-`Pag` packed adjacency: one optional [`PackedClass`] per
/// packable class per direction. Built once (lazily) per graph via
/// [`Pag::packed`] and shared read-only by every sweep worker.
#[derive(Debug)]
pub struct PackedAdj {
    in_classes: [Option<PackedClass>; PACKED_CLASSES],
    out_classes: [Option<PackedClass>; PACKED_CLASSES],
}

/// Slot of a packable class, or `None` for payload-carrying classes.
#[inline]
fn slot(class: EdgeClass) -> Option<usize> {
    match class {
        EdgeClass::New => Some(0),
        EdgeClass::AssignLocal => Some(1),
        EdgeClass::AssignGlobal => Some(2),
        _ => None,
    }
}

impl PackedAdj {
    /// The density heuristic: whether a class with `edges` edges packs on
    /// an `n`-node graph (see the module docs for the rationale).
    #[inline]
    pub fn should_pack(n: usize, edges: usize) -> bool {
        n > 0 && n <= MAX_PACKED_NODES && edges * PACK_DENSITY >= n
    }

    /// Builds the packed rows for `pag`, packing each payload-free class
    /// that passes [`PackedAdj::should_pack`] (both directions of a class
    /// share the decision — they have the same edge count).
    pub fn build(pag: &Pag) -> PackedAdj {
        let n = pag.node_count();
        let mut class_edges = [0usize; EDGE_CLASSES];
        for e in pag.edges() {
            class_edges[e.kind.class() as usize] += 1;
        }
        let mut adj = PackedAdj {
            in_classes: [None, None, None],
            out_classes: [None, None, None],
        };
        for class in [
            EdgeClass::New,
            EdgeClass::AssignLocal,
            EdgeClass::AssignGlobal,
        ] {
            let k = slot(class).expect("packable class");
            if !Self::should_pack(n, class_edges[class as usize]) {
                continue;
            }
            adj.in_classes[k] = Some(PackedClass::build(n, |node, set| {
                for e in pag.incoming_kind(node, class) {
                    set(e.src.raw());
                }
            }));
            adj.out_classes[k] = Some(PackedClass::build(n, |node, set| {
                for e in pag.outgoing_kind(node, class) {
                    set(e.dst.raw());
                }
            }));
        }
        adj
    }

    /// Rebuilds the packed rows for an edited `pag` (same node count),
    /// re-deriving only the rows of `dirty` nodes and copying the rest
    /// from `old` — bit-identical to [`PackedAdj::build`] on the edited
    /// graph. A class whose packing decision flips, or that `old` never
    /// packed, is built from scratch.
    pub(crate) fn rebuild_from(
        old: &PackedAdj,
        pag: &Pag,
        dirty: &std::collections::HashSet<u32>,
    ) -> PackedAdj {
        let n = pag.node_count();
        let mut class_edges = [0usize; EDGE_CLASSES];
        for e in pag.edges() {
            class_edges[e.kind.class() as usize] += 1;
        }
        let mut adj = PackedAdj {
            in_classes: [None, None, None],
            out_classes: [None, None, None],
        };
        for class in [
            EdgeClass::New,
            EdgeClass::AssignLocal,
            EdgeClass::AssignGlobal,
        ] {
            let k = slot(class).expect("packable class");
            if !Self::should_pack(n, class_edges[class as usize]) {
                continue;
            }
            let in_of = |node: NodeId, set: &mut dyn FnMut(u32)| {
                for e in pag.incoming_kind(node, class) {
                    set(e.src.raw());
                }
            };
            let out_of = |node: NodeId, set: &mut dyn FnMut(u32)| {
                for e in pag.outgoing_kind(node, class) {
                    set(e.dst.raw());
                }
            };
            adj.in_classes[k] = Some(match &old.in_classes[k] {
                Some(oc) => PackedClass::rebuild_from(oc, n, dirty, in_of),
                None => PackedClass::build(n, in_of),
            });
            adj.out_classes[k] = Some(match &old.out_classes[k] {
                Some(oc) => PackedClass::rebuild_from(oc, n, dirty, out_of),
                None => PackedClass::build(n, out_of),
            });
        }
        adj
    }

    /// The packed **incoming** rows of `class` (successors = edge sources),
    /// or `None` when the class is unpacked — payload-carrying, or too
    /// sparse for the density heuristic — and callers must walk the CSR
    /// slice instead.
    #[inline]
    pub fn in_packed(&self, class: EdgeClass) -> Option<&PackedClass> {
        slot(class).and_then(|k| self.in_classes[k].as_ref())
    }

    /// The packed **outgoing** rows of `class` (successors = edge
    /// destinations), or `None` when the class is unpacked.
    #[inline]
    pub fn out_packed(&self, class: EdgeClass) -> Option<&PackedClass> {
        slot(class).and_then(|k| self.out_classes[k].as_ref())
    }

    /// Number of classes that packed (0..=[`PACKED_CLASSES`]).
    pub fn packed_class_count(&self) -> usize {
        self.in_classes.iter().flatten().count()
    }

    /// Total `u64` words of packed row storage, both directions — the
    /// build cost `matrix_pays_off` amortises over the batch.
    pub fn packed_words(&self) -> usize {
        self.in_classes
            .iter()
            .chain(self.out_classes.iter())
            .flatten()
            .map(PackedClass::word_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PagBuilder;
    use crate::node::{NodeInfo, NodeKind};
    use crate::types::TypeInfo;
    use crate::EdgeKind;

    fn decode(row: &[u64]) -> Vec<u32> {
        let mut v = Vec::new();
        for (i, &w) in row.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                v.push(i as u32 * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        v
    }

    fn sample() -> Pag {
        let mut b = PagBuilder::new();
        let m = b.add_method("main");
        let t = b.types_mut().add_type(TypeInfo {
            name: "T".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let f = b.types_mut().add_field("f");
        let cs = b.fresh_call_site();
        let mk = |name: &str, kind: NodeKind| NodeInfo {
            kind,
            ty: t,
            name: name.into(),
            is_application: true,
        };
        // Enough nodes to cross a word boundary.
        let nodes: Vec<_> = (0..70)
            .map(|i| {
                let kind = if i % 10 == 0 {
                    NodeKind::Object { method: m }
                } else {
                    NodeKind::Local { method: m }
                };
                b.add_node(mk(&format!("n{i}"), kind))
            })
            .collect();
        for i in 0..nodes.len() - 1 {
            match i % 5 {
                0 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::New),
                1 | 2 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::AssignLocal),
                3 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::Load(f)),
                _ => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::Param(cs)),
            }
        }
        // A high-id successor to exercise the second row word.
        b.add_edge(nodes[69], nodes[2], EdgeKind::AssignLocal);
        // Fat rows (>= ROW_MIN_BITS successors) that actually pack: a
        // factory-style allocation hub and an assignment fan-out.
        for i in 30..38 {
            b.add_edge(nodes[i], nodes[0], EdgeKind::New);
        }
        for i in 50..58 {
            b.add_edge(nodes[5], nodes[i], EdgeKind::AssignLocal);
        }
        b.freeze()
    }

    #[test]
    fn packed_rows_match_csr_slices() {
        let pag = sample();
        let adj = PackedAdj::build(&pag);
        assert!(adj.packed_class_count() >= 1);
        let mut fat_rows = 0;
        let mut check = |pc: Option<&PackedClass>, n: NodeId, want: &[u32], what: &str| {
            let Some(pc) = pc else { return };
            let mut want = want.to_vec();
            want.sort_unstable();
            want.dedup();
            match pc.row(n.raw()) {
                Some(row) => {
                    assert_eq!(decode(row), want, "{what} of {n:?}");
                    assert!(want.len() >= ROW_MIN_BITS as usize, "thin row stored");
                    fat_rows += 1;
                }
                None => assert!(
                    want.len() < ROW_MIN_BITS as usize,
                    "{what} of {n:?}: fat row dropped"
                ),
            }
        };
        for class in [
            EdgeClass::New,
            EdgeClass::AssignLocal,
            EdgeClass::AssignGlobal,
        ] {
            for n in pag.node_ids() {
                let want_in: Vec<u32> = pag
                    .incoming_kind(n, class)
                    .iter()
                    .map(|e| e.src.raw())
                    .collect();
                let want_out: Vec<u32> = pag
                    .outgoing_kind(n, class)
                    .iter()
                    .map(|e| e.dst.raw())
                    .collect();
                check(adj.in_packed(class), n, &want_in, "in");
                check(adj.out_packed(class), n, &want_out, "out");
            }
        }
        assert!(fat_rows >= 2, "hub rows should pack (got {fat_rows})");
    }

    #[test]
    fn payload_classes_never_pack() {
        let pag = sample();
        let adj = PackedAdj::build(&pag);
        for class in [
            EdgeClass::Load,
            EdgeClass::Store,
            EdgeClass::Param,
            EdgeClass::Ret,
        ] {
            assert!(adj.in_packed(class).is_none());
            assert!(adj.out_packed(class).is_none());
        }
    }

    #[test]
    fn density_heuristic() {
        assert!(!PackedAdj::should_pack(0, 0), "empty graph");
        assert!(PackedAdj::should_pack(64, 8));
        assert!(!PackedAdj::should_pack(64, 7), "too sparse");
        assert!(
            !PackedAdj::should_pack(MAX_PACKED_NODES + 1, 1 << 20),
            "too big"
        );
        // A sparse class on a real graph falls back to CSR.
        let mut b = PagBuilder::new();
        let m = b.add_method("m");
        let t = b.types_mut().add_type(TypeInfo {
            name: "T".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let nodes: Vec<_> = (0..100)
            .map(|i| {
                b.add_node(NodeInfo {
                    kind: NodeKind::Local { method: m },
                    ty: t,
                    name: format!("v{i}"),
                    is_application: true,
                })
            })
            .collect();
        // Dense assign_l (99 edges), sparse new (1 edge on 100 nodes).
        for i in 0..99 {
            b.add_edge(nodes[i], nodes[i + 1], EdgeKind::AssignLocal);
        }
        // One fat in-row so the packed class actually stores words.
        for i in 10..10 + ROW_MIN_BITS as usize {
            b.add_edge(nodes[i], nodes[0], EdgeKind::AssignLocal);
        }
        b.add_edge(nodes[0], nodes[1], EdgeKind::New);
        let pag = b.freeze();
        let adj = PackedAdj::build(&pag);
        let al = adj.in_packed(EdgeClass::AssignLocal).expect("class packs");
        assert!(
            adj.in_packed(EdgeClass::New).is_none(),
            "sparse class stays CSR"
        );
        assert!(adj.packed_words() > 0);
        assert!(al.row(nodes[0].raw()).is_some(), "fat row packs");
        assert!(al.row(nodes[1].raw()).is_none(), "thin chain row stays CSR");
    }

    #[test]
    fn pag_packed_is_cached_and_shared_by_clones() {
        let pag = sample();
        let a = pag.packed() as *const PackedAdj;
        let b = pag.packed() as *const PackedAdj;
        assert_eq!(a, b, "built once");
        let clone = pag.clone();
        assert_eq!(
            clone.packed() as *const PackedAdj,
            a,
            "clones share the cache"
        );
    }
}

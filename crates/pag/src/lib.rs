//! # parcfl-pag — Pointer Assignment Graph
//!
//! The program representation of "Parallel Pointer Analysis with
//! CFL-Reachability" (Su, Ye, Xue — ICPP 2014), Fig. 1: a directed graph
//! whose nodes are local variables, globals and allocation-site objects, and
//! whose edges are the seven statement kinds (`new`, `assign_l`, `assign_g`,
//! `ld(f)`, `st(f)`, `param_i`, `ret_i`), oriented in the direction of value
//! flow.
//!
//! The crate also hosts:
//!
//! * [`types::TypeTable`] — the analysed program's type metadata, needed by
//!   query scheduling for dependence-depth estimation;
//! * [`algo`] — graph utilities (iterative Tarjan SCC, DAG longest paths,
//!   union-find) shared by the frontend and the scheduler;
//! * [`stats::PagStats`] — structural statistics (Table I columns);
//! * [`packed`] — lazily-built bit-packed successor rows for the matrix
//!   engine's word-level sweep kernels (payload-free classes only, with a
//!   density fallback to the CSR slices);
//! * [`dot`] — Graphviz export.
//!
//! The `jmp` shortcut edges of the extended PAG (paper Fig. 4) are an
//! *overlay* maintained by `parcfl-core`'s concurrent jmp store; the graph
//! here stays immutable and is shared read-only across threads.

#![warn(missing_docs)]

pub mod algo;
pub mod delta;
pub mod dot;
mod edge;
mod graph;
mod ids;
mod node;
pub mod packed;
pub mod stats;
pub mod types;

pub use delta::{DeltaEffect, DeltaOp, PagDelta};
pub use edge::{Edge, EdgeClass, EdgeKind, EDGE_CLASSES};
pub use graph::{Pag, PagBuilder};
pub use ids::{CallSiteId, FieldId, MethodId, NodeId, TypeId};
pub use node::{NodeInfo, NodeKind};
pub use packed::{PackedAdj, PackedClass, MAX_PACKED_NODES, ROW_MIN_BITS};
pub use types::TypeInfo;

//! First-class program edits: [`PagDelta`] batches edge/node/method/call-
//! site changes and [`Pag::apply_delta`] rebuilds the frozen graph —
//! bit-identical to re-freezing the edited edge set from scratch, with the
//! packed-adjacency rows rebuilt selectively (only the rows an effective
//! edge change touches; untouched rows are copied from the previous
//! build).
//!
//! The returned [`DeltaEffect`] records only the *effective* changes
//! (adding an edge that already exists, or removing one that does not, is
//! a no-op), which is what the incremental session layers key their
//! selective jmp/memo/schedule invalidation on: the dirty node set is the
//! endpoints of the effective edge changes, the dirty field set the fields
//! of effective load/store changes. A delta whose effect
//! [`DeltaEffect::is_noop`] leaves the revision counter untouched, so
//! callers can skip invalidation entirely.

use crate::edge::{Edge, EdgeKind};
use crate::graph::{build_pag_tables, Pag};
use crate::ids::{CallSiteId, FieldId, MethodId, NodeId};
use crate::node::NodeInfo;
use crate::packed::PackedAdj;
use std::collections::HashSet;

/// One atomic edge edit. Both directions are idempotent: adding a present
/// edge and removing an absent one are no-ops (the frozen graph is a
/// deduplicated edge *set*).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Insert `edge` (no-op if already present).
    AddEdge(Edge),
    /// Remove `edge` (no-op if absent).
    RemoveEdge(Edge),
}

impl DeltaOp {
    /// The edge this op targets.
    pub fn edge(&self) -> Edge {
        match *self {
            DeltaOp::AddEdge(e) | DeltaOp::RemoveEdge(e) => e,
        }
    }
}

/// A batch of program edits, applied atomically by [`Pag::apply_delta`].
///
/// Node/method/call-site spaces are append-only — existing ids never move,
/// so every interned context, jmp-store key and cached answer keeps
/// referring to the same entity across revisions. "Deleting" a call site
/// ([`PagDelta::remove_call_site`]) removes its `param`/`ret` edges; the
/// id itself (and any contexts interned over it) stays valid but
/// unreachable.
#[derive(Clone, Debug, Default)]
pub struct PagDelta {
    ops: Vec<DeltaOp>,
    add_nodes: Vec<NodeInfo>,
    add_methods: Vec<String>,
    add_call_sites: u32,
    remove_call_sites: Vec<CallSiteId>,
}

impl PagDelta {
    /// An empty delta.
    pub fn new() -> Self {
        PagDelta::default()
    }

    /// Whether the delta carries no edits at all.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
            && self.add_nodes.is_empty()
            && self.add_methods.is_empty()
            && self.add_call_sites == 0
            && self.remove_call_sites.is_empty()
    }

    /// Appends a raw edit op.
    pub fn push(&mut self, op: DeltaOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Adds an edge. May reference nodes appended by this same delta.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) -> &mut Self {
        self.push(DeltaOp::AddEdge(Edge { src, dst, kind }))
    }

    /// Removes an edge (no-op if absent).
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) -> &mut Self {
        self.push(DeltaOp::RemoveEdge(Edge { src, dst, kind }))
    }

    /// Appends a node; its id will be the pre-delta node count plus the
    /// number of nodes already appended by this delta.
    pub fn add_node(&mut self, info: NodeInfo) -> &mut Self {
        self.add_nodes.push(info);
        self
    }

    /// Registers a new method name (id = pre-delta method count + offset).
    pub fn add_method(&mut self, name: impl Into<String>) -> &mut Self {
        self.add_methods.push(name.into());
        self
    }

    /// Allocates `n` fresh call-site ids past the current count.
    pub fn add_call_sites(&mut self, n: u32) -> &mut Self {
        self.add_call_sites += n;
        self
    }

    /// Removes every `param`/`ret` edge of call site `cs`. The id stays
    /// allocated (contexts interned over it remain valid, just
    /// unreachable).
    pub fn remove_call_site(&mut self, cs: CallSiteId) -> &mut Self {
        self.remove_call_sites.push(cs);
        self
    }

    /// The raw edge ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }
}

/// The *effective* changes one [`Pag::apply_delta`] call produced, after
/// idempotent ops cancel out. This — not the delta itself — is what the
/// invalidation layers consume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaEffect {
    /// Edges present after but not before, in canonical order.
    pub added_edges: Vec<Edge>,
    /// Edges present before but not after, in canonical order.
    pub removed_edges: Vec<Edge>,
    /// Ids of nodes this delta appended.
    pub added_nodes: Vec<NodeId>,
    /// Ids of methods this delta appended.
    pub added_methods: Vec<MethodId>,
    /// The revision of the resulting graph (unchanged when the delta was
    /// a no-op).
    pub revision: u64,
}

impl DeltaEffect {
    /// Whether the graph is unchanged (every op cancelled out and nothing
    /// was appended). A no-op effect keeps the revision and requires zero
    /// invalidation work.
    pub fn is_noop(&self) -> bool {
        self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.added_nodes.is_empty()
            && self.added_methods.is_empty()
    }

    /// Every node an effective edge change touches (both endpoints, with
    /// repeats). The invalidation layers union these into their dirty
    /// bitsets.
    pub fn dirty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added_edges
            .iter()
            .chain(self.removed_edges.iter())
            .flat_map(|e| [e.src, e.dst])
    }

    /// Every field whose load/store population an effective edge change
    /// altered.
    pub fn dirty_fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.added_edges
            .iter()
            .chain(self.removed_edges.iter())
            .filter_map(|e| e.kind.field())
    }
}

/// Canonical presentation order for effect edge lists: the same
/// `(dst, class, src, payload)` order the frozen incoming array uses.
fn canonical_edge_order(edges: &mut [Edge]) {
    edges.sort_unstable_by_key(|e| {
        let (class, detail) = crate::graph::edge_sort_key(e.kind);
        (e.dst, class, e.src, detail)
    });
}

impl Pag {
    /// The applied-revision counter: 0 for a freshly frozen graph,
    /// incremented by every effective [`Pag::apply_delta`]. Cheap staleness
    /// check for caches keyed on a graph snapshot.
    pub fn revision(&self) -> u64 {
        self.revision_counter()
    }

    /// Applies `delta`, returning the edited graph and the effective
    /// changes. The result is **bit-identical** to freezing the edited
    /// node/edge set from scratch (same CSR layout, same field indexes,
    /// same packed rows); only the packed-adjacency build is incremental —
    /// rows untouched by the dirty node set are copied from this graph's
    /// build instead of being re-derived.
    ///
    /// Ops referencing out-of-range nodes are ignored (callers that fuzz
    /// edit scripts shrink node sets independently of the scripts).
    pub fn apply_delta(&self, delta: &PagDelta) -> (Pag, DeltaEffect) {
        let (mut nodes, edges, types, mut method_names, mut call_sites) = self.clone_parts();
        let old_rev = self.revision();

        let mut effect = DeltaEffect {
            revision: old_rev,
            ..DeltaEffect::default()
        };
        for info in &delta.add_nodes {
            effect.added_nodes.push(NodeId::from_usize(nodes.len()));
            nodes.push(info.clone());
        }
        for name in &delta.add_methods {
            effect
                .added_methods
                .push(MethodId::from_usize(method_names.len()));
            method_names.push(name.clone());
        }
        call_sites += delta.add_call_sites;
        let n = nodes.len();

        let before: HashSet<Edge> = edges.iter().copied().collect();
        let mut after = before.clone();
        for op in &delta.ops {
            let e = op.edge();
            if e.src.index() >= n || e.dst.index() >= n {
                continue;
            }
            match op {
                DeltaOp::AddEdge(_) => {
                    after.insert(e);
                }
                DeltaOp::RemoveEdge(_) => {
                    after.remove(&e);
                }
            }
        }
        for &cs in &delta.remove_call_sites {
            after.retain(|e| e.kind.call_site() != Some(cs));
        }

        effect.added_edges = after.difference(&before).copied().collect();
        effect.removed_edges = before.difference(&after).copied().collect();
        canonical_edge_order(&mut effect.added_edges);
        canonical_edge_order(&mut effect.removed_edges);

        if effect.is_noop() {
            return (self.clone(), effect);
        }
        effect.revision = old_rev + 1;

        let new_edges: Vec<Edge> = after.into_iter().collect();
        let pag = build_pag_tables(
            nodes,
            new_edges,
            types,
            method_names,
            call_sites,
            effect.revision,
        );

        // Selective packed rebuild: when the node space is unchanged and
        // this graph already paid for its packed build, re-derive only the
        // rows a dirty endpoint touches and copy the rest. Falls back to
        // the (lazy) full build otherwise; either way the rows are
        // bit-identical to a from-scratch build.
        if effect.added_nodes.is_empty() {
            if let Some(old_adj) = self.packed_built() {
                let dirty: HashSet<u32> = effect.dirty_nodes().map(NodeId::raw).collect();
                pag.prime_packed(PackedAdj::rebuild_from(old_adj, &pag, &dirty));
            }
        }
        (pag, effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PagBuilder;
    use crate::node::NodeKind;
    use crate::types::TypeInfo;
    use crate::{EdgeClass as EC, PackedClass};

    fn sample() -> Pag {
        let mut b = PagBuilder::new();
        let m = b.add_method("main");
        let t = b.types_mut().add_type(TypeInfo {
            name: "T".into(),
            is_ref: true,
            fields: Vec::new(),
            supertype: None,
        });
        let f = b.types_mut().add_field("f");
        let cs = b.fresh_call_site();
        let mk = |name: &str, kind: NodeKind| NodeInfo {
            kind,
            ty: t,
            name: name.into(),
            is_application: true,
        };
        let nodes: Vec<_> = (0..80)
            .map(|i| {
                let kind = if i % 7 == 0 {
                    NodeKind::Object { method: m }
                } else {
                    NodeKind::Local { method: m }
                };
                b.add_node(mk(&format!("n{i}"), kind))
            })
            .collect();
        for i in 0..nodes.len() - 1 {
            match i % 5 {
                0 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::New),
                1 | 2 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::AssignLocal),
                3 => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::Load(f)),
                _ => b.add_edge(nodes[i], nodes[i + 1], EdgeKind::Param(cs)),
            }
        }
        for i in 30..40 {
            b.add_edge(nodes[i], nodes[0], EdgeKind::AssignLocal);
        }
        b.freeze()
    }

    /// Field-for-field equality with a fresh freeze of the same edits.
    fn assert_equals_fresh(edited: &Pag, fresh: &Pag) {
        assert_eq!(edited.node_count(), fresh.node_count());
        assert_eq!(edited.edges(), fresh.edges());
        assert!(edited.revision() > 0);
        for n in fresh.node_ids() {
            assert_eq!(edited.incoming(n), fresh.incoming(n), "incoming {n:?}");
            assert_eq!(edited.outgoing(n), fresh.outgoing(n), "outgoing {n:?}");
            for class in [
                EC::New,
                EC::AssignLocal,
                EC::AssignGlobal,
                EC::Load,
                EC::Store,
                EC::Param,
                EC::Ret,
            ] {
                assert_eq!(
                    edited.incoming_kind(n, class),
                    fresh.incoming_kind(n, class)
                );
                assert_eq!(
                    edited.outgoing_kind(n, class),
                    fresh.outgoing_kind(n, class)
                );
            }
        }
        for f in 0..fresh.types().field_count() {
            let f = FieldId::from_usize(f);
            assert_eq!(edited.loads_of(f), fresh.loads_of(f));
            assert_eq!(edited.stores_of(f), fresh.stores_of(f));
        }
    }

    fn rebuild_fresh(pag: &Pag) -> Pag {
        let mut b = PagBuilder::with_types(pag.types().clone());
        for n in pag.node_ids() {
            b.add_node(pag.node(n).clone());
        }
        for _ in 0..pag.method_count() {
            b.add_method("m");
        }
        for _ in 0..pag.call_site_count() {
            b.fresh_call_site();
        }
        for e in pag.edges() {
            b.add_edge(e.src, e.dst, e.kind);
        }
        b.freeze()
    }

    #[test]
    fn add_and_remove_edges_match_fresh_freeze() {
        let pag = sample();
        assert_eq!(pag.revision(), 0);
        let a = NodeId::new(3);
        let b2 = NodeId::new(60);
        let mut d = PagDelta::new();
        d.add_edge(a, b2, EdgeKind::AssignLocal).remove_edge(
            NodeId::new(0),
            NodeId::new(1),
            EdgeKind::New,
        );
        let (edited, effect) = pag.apply_delta(&d);
        assert_eq!(edited.revision(), 1);
        assert_eq!(effect.revision, 1);
        assert_eq!(effect.added_edges.len(), 1);
        assert_eq!(effect.removed_edges.len(), 1);
        assert!(!effect.is_noop());
        let fresh = rebuild_fresh(&edited);
        assert_equals_fresh(&edited, &fresh);
        // Chained deltas keep counting.
        let mut d2 = PagDelta::new();
        d2.add_edge(b2, a, EdgeKind::New);
        let (edited2, effect2) = edited.apply_delta(&d2);
        assert_eq!(edited2.revision(), 2);
        assert_eq!(effect2.revision, 2);
    }

    #[test]
    fn noop_delta_keeps_revision_and_reports_empty_effect() {
        let pag = sample();
        // Adding a present edge and removing an absent one cancel to
        // nothing; so does an add+remove pair of the same new edge.
        let present = pag.edges()[0];
        let mut d = PagDelta::new();
        d.push(DeltaOp::AddEdge(present))
            .remove_edge(NodeId::new(70), NodeId::new(72), EdgeKind::New)
            .add_edge(NodeId::new(12), NodeId::new(50), EdgeKind::AssignLocal)
            .remove_edge(NodeId::new(12), NodeId::new(50), EdgeKind::AssignLocal);
        let (same, effect) = pag.apply_delta(&d);
        assert!(effect.is_noop());
        assert_eq!(effect.revision, 0);
        assert_eq!(same.revision(), 0);
        assert_eq!(same.edges(), pag.edges());
        assert!(effect.dirty_nodes().next().is_none());
        // Empty delta is trivially a no-op too.
        assert!(PagDelta::new().is_empty());
        let (_, e2) = pag.apply_delta(&PagDelta::new());
        assert!(e2.is_noop());
    }

    #[test]
    fn remove_call_site_drops_its_param_ret_edges() {
        let pag = sample();
        let cs = CallSiteId::new(0);
        let had: usize = pag
            .edges()
            .iter()
            .filter(|e| e.kind.call_site() == Some(cs))
            .count();
        assert!(had > 0);
        let mut d = PagDelta::new();
        d.remove_call_site(cs);
        let (edited, effect) = pag.apply_delta(&d);
        assert_eq!(effect.removed_edges.len(), had);
        assert_eq!(
            edited
                .edges()
                .iter()
                .filter(|e| e.kind.call_site() == Some(cs))
                .count(),
            0
        );
        // The id space is untouched: the site stays allocated.
        assert_eq!(edited.call_site_count(), pag.call_site_count());
        assert_equals_fresh(&edited, &rebuild_fresh(&edited));
    }

    #[test]
    fn added_nodes_and_methods_get_fresh_ids() {
        let pag = sample();
        let n0 = pag.node_count();
        let mut d = PagDelta::new();
        d.add_node(NodeInfo {
            kind: NodeKind::Local {
                method: MethodId::new(0),
            },
            ty: crate::ids::TypeId::new(0),
            name: "fresh".into(),
            is_application: true,
        })
        .add_method("extra")
        .add_call_sites(2);
        d.add_edge(
            NodeId::from_usize(n0),
            NodeId::new(0),
            EdgeKind::AssignLocal,
        );
        let (edited, effect) = pag.apply_delta(&d);
        assert_eq!(effect.added_nodes, vec![NodeId::from_usize(n0)]);
        assert_eq!(edited.node_count(), n0 + 1);
        assert_eq!(edited.method_count(), pag.method_count() + 1);
        assert_eq!(edited.call_site_count(), pag.call_site_count() + 2);
        assert_eq!(edited.node_by_name("fresh"), Some(NodeId::from_usize(n0)));
        assert_eq!(
            edited.outgoing(NodeId::from_usize(n0)).len(),
            1,
            "edge to the appended node applies"
        );
        assert_equals_fresh(&edited, &rebuild_fresh(&edited));
    }

    #[test]
    fn out_of_range_ops_are_ignored() {
        let pag = sample();
        let mut d = PagDelta::new();
        d.add_edge(NodeId::new(9_999), NodeId::new(0), EdgeKind::New);
        let (_, effect) = pag.apply_delta(&d);
        assert!(effect.is_noop());
    }

    #[test]
    fn selective_packed_rebuild_matches_full_build() {
        let pag = sample();
        // Force the old build so the delta path copies from it.
        assert!(pag.packed().packed_class_count() >= 1);
        let mut d = PagDelta::new();
        d.add_edge(NodeId::new(2), NodeId::new(64), EdgeKind::AssignLocal)
            .remove_edge(NodeId::new(30), NodeId::new(0), EdgeKind::AssignLocal)
            .add_edge(NodeId::new(5), NodeId::new(6), EdgeKind::New);
        let (edited, effect) = pag.apply_delta(&d);
        assert!(!effect.is_noop());
        let incremental = edited.packed();
        let full = PackedAdj::build(&edited);
        let row_eq = |a: Option<&PackedClass>, b: Option<&PackedClass>, what: &str| {
            assert_eq!(a.is_some(), b.is_some(), "{what}: packing decision");
            let (Some(a), Some(b)) = (a, b) else { return };
            assert_eq!(a.stride(), b.stride(), "{what}: stride");
            for n in 0..edited.node_count() as u32 {
                assert_eq!(a.row(n), b.row(n), "{what}: row {n}");
            }
            assert_eq!(a.word_count(), b.word_count(), "{what}: storage layout");
        };
        for class in [EC::New, EC::AssignLocal, EC::AssignGlobal] {
            row_eq(
                incremental.in_packed(class),
                full.in_packed(class),
                "in rows",
            );
            row_eq(
                incremental.out_packed(class),
                full.out_packed(class),
                "out rows",
            );
        }
    }

    #[test]
    fn dirty_sets_cover_both_endpoints_and_fields() {
        let pag = sample();
        let f = FieldId::new(1);
        let mut d = PagDelta::new();
        d.add_edge(NodeId::new(10), NodeId::new(20), EdgeKind::Store(f))
            .remove_edge(NodeId::new(3), NodeId::new(4), EdgeKind::Load(f));
        let (_, effect) = pag.apply_delta(&d);
        let nodes: HashSet<u32> = effect.dirty_nodes().map(NodeId::raw).collect();
        assert!(nodes.contains(&10) && nodes.contains(&20));
        assert!(nodes.contains(&3) && nodes.contains(&4));
        let fields: Vec<FieldId> = effect.dirty_fields().collect();
        assert_eq!(fields, vec![f, f]);
    }
}

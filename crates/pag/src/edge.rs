//! PAG edges: the seven statement kinds of the paper's Fig. 1.
//!
//! Every edge is oriented in the direction of its **value flow**: the paper
//! writes `l1 <-kind- l2`, which we store as `Edge { src: l2, dst: l1 }`.
//!
//! * `New`: `l1 <-new- o` — object `o` flows into `l1` (`l1 = new T()`).
//! * `AssignLocal`: `l1 <-assign_l- l2` — `l1 = l2`, both locals.
//! * `AssignGlobal`: `g <-assign_g- v` or `v <-assign_g- g` — an assignment
//!   with at least one global side; traversals clear the calling context on
//!   these (globals are context-insensitive).
//! * `Load(f)`: `l1 <-ld(f)- l2` — `l1 = l2.f`; `src` is the **base** `l2`.
//! * `Store(f)`: `l1 <-st(f)- l2` — `l1.f = l2`; `dst` is the **base** `l1`.
//! * `Param(i)`: actual-to-formal parameter passing at call site `i`.
//! * `Ret(i)`: return-value assignment at call site `i`.

use crate::ids::{CallSiteId, FieldId, NodeId};

/// The label of a PAG edge.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Allocation: object flows to variable.
    New,
    /// Local assignment (`assign_l`).
    AssignLocal,
    /// Assignment involving at least one global (`assign_g`).
    AssignGlobal,
    /// Field load `dst = src.f`; `src` is the base variable.
    Load(FieldId),
    /// Field store `dst.f = src`; `dst` is the base variable.
    Store(FieldId),
    /// Parameter passing at call site `i` (actual → formal).
    Param(CallSiteId),
    /// Return-value flow at call site `i` (callee return local → caller).
    Ret(CallSiteId),
}

/// The payload-free discriminant of an [`EdgeKind`] — the unit the frozen
/// CSR groups each node's edge range by. Variants are ordered exactly as
/// the canonical edge sort lays them out, so `class as usize` indexes the
/// per-kind sub-range table directly.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EdgeClass {
    /// Allocation edges.
    New = 0,
    /// Local assignments.
    AssignLocal = 1,
    /// Global assignments.
    AssignGlobal = 2,
    /// Field loads (any field).
    Load = 3,
    /// Field stores (any field).
    Store = 4,
    /// Parameter passing (any call site).
    Param = 5,
    /// Return-value flow (any call site).
    Ret = 6,
}

/// Number of [`EdgeClass`] variants (size of the per-node sub-range table).
pub const EDGE_CLASSES: usize = 7;

impl EdgeClass {
    /// Stable snake_case name, used as a metric label by the runtime's
    /// per-class sweep attribution counters.
    pub fn name(self) -> &'static str {
        match self {
            EdgeClass::New => "new",
            EdgeClass::AssignLocal => "assign_local",
            EdgeClass::AssignGlobal => "assign_global",
            EdgeClass::Load => "load",
            EdgeClass::Store => "store",
            EdgeClass::Param => "param",
            EdgeClass::Ret => "ret",
        }
    }

    /// All classes in discriminant order (`class as usize` indexes match).
    pub fn all() -> [EdgeClass; EDGE_CLASSES] {
        [
            EdgeClass::New,
            EdgeClass::AssignLocal,
            EdgeClass::AssignGlobal,
            EdgeClass::Load,
            EdgeClass::Store,
            EdgeClass::Param,
            EdgeClass::Ret,
        ]
    }
}

impl EdgeKind {
    /// The payload-free class of this kind (see [`EdgeClass`]).
    #[inline]
    pub fn class(self) -> EdgeClass {
        match self {
            EdgeKind::New => EdgeClass::New,
            EdgeKind::AssignLocal => EdgeClass::AssignLocal,
            EdgeKind::AssignGlobal => EdgeClass::AssignGlobal,
            EdgeKind::Load(_) => EdgeClass::Load,
            EdgeKind::Store(_) => EdgeClass::Store,
            EdgeKind::Param(_) => EdgeClass::Param,
            EdgeKind::Ret(_) => EdgeClass::Ret,
        }
    }

    /// Whether the edge participates in the `direct` relation used for query
    /// grouping (paper grammar (5)): assignments, parameters and returns,
    /// but *not* loads/stores (no direct reachability between their ends)
    /// and not `new` edges (grouping is over variables).
    #[inline]
    pub fn is_direct(self) -> bool {
        matches!(
            self,
            EdgeKind::AssignLocal | EdgeKind::AssignGlobal | EdgeKind::Param(_) | EdgeKind::Ret(_)
        )
    }

    /// Whether the edge is any kind of assignment once calling contexts are
    /// ignored (field-sensitive-only formulation, grammar (2)).
    #[inline]
    pub fn is_assign_like(self) -> bool {
        self.is_direct()
    }

    /// The field accessed, for `Load`/`Store` edges.
    #[inline]
    pub fn field(self) -> Option<FieldId> {
        match self {
            EdgeKind::Load(f) | EdgeKind::Store(f) => Some(f),
            _ => None,
        }
    }

    /// The call site, for `Param`/`Ret` edges.
    #[inline]
    pub fn call_site(self) -> Option<CallSiteId> {
        match self {
            EdgeKind::Param(i) | EdgeKind::Ret(i) => Some(i),
            _ => None,
        }
    }

    /// A short label used in DOT dumps and debug output.
    pub fn label(self) -> String {
        match self {
            EdgeKind::New => "new".to_string(),
            EdgeKind::AssignLocal => "assign_l".to_string(),
            EdgeKind::AssignGlobal => "assign_g".to_string(),
            EdgeKind::Load(f) => format!("ld({f})"),
            EdgeKind::Store(f) => format!("st({f})"),
            EdgeKind::Param(i) => format!("param_{i}"),
            EdgeKind::Ret(i) => format!("ret_{i}"),
        }
    }
}

/// A directed PAG edge, oriented in the direction of value flow
/// (`src` flows to `dst`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source of value flow (the paper's right-hand node `l2`/`o`).
    pub src: NodeId,
    /// Destination of value flow (the paper's left-hand node `l1`).
    pub dst: NodeId,
    /// The edge label.
    pub kind: EdgeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_relation_membership() {
        assert!(EdgeKind::AssignLocal.is_direct());
        assert!(EdgeKind::AssignGlobal.is_direct());
        assert!(EdgeKind::Param(CallSiteId(0)).is_direct());
        assert!(EdgeKind::Ret(CallSiteId(0)).is_direct());
        assert!(!EdgeKind::New.is_direct());
        assert!(!EdgeKind::Load(FieldId(0)).is_direct());
        assert!(!EdgeKind::Store(FieldId(0)).is_direct());
    }

    #[test]
    fn accessors() {
        assert_eq!(EdgeKind::Load(FieldId(4)).field(), Some(FieldId(4)));
        assert_eq!(EdgeKind::Store(FieldId(2)).field(), Some(FieldId(2)));
        assert_eq!(EdgeKind::New.field(), None);
        assert_eq!(
            EdgeKind::Param(CallSiteId(9)).call_site(),
            Some(CallSiteId(9))
        );
        assert_eq!(
            EdgeKind::Ret(CallSiteId(1)).call_site(),
            Some(CallSiteId(1))
        );
        assert_eq!(EdgeKind::AssignLocal.call_site(), None);
    }

    #[test]
    fn labels() {
        assert_eq!(EdgeKind::New.label(), "new");
        assert_eq!(EdgeKind::Load(FieldId(1)).label(), "ld(f1)");
        assert_eq!(EdgeKind::Param(CallSiteId(17)).label(), "param_cs17");
    }
}

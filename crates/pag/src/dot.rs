//! Graphviz DOT export for PAGs — debugging aid mirroring the paper's
//! Fig. 2(b) drawings.

use crate::graph::Pag;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Renders the PAG in Graphviz DOT syntax. Objects are drawn as boxes,
/// globals as diamonds, locals as ellipses; edges carry their labels.
pub fn to_dot(pag: &Pag) -> String {
    let mut out = String::new();
    out.push_str("digraph pag {\n  rankdir=LR;\n");
    for n in pag.node_ids() {
        let info = pag.node(n);
        let shape = match info.kind {
            NodeKind::Object { .. } => "box",
            NodeKind::Global => "diamond",
            NodeKind::Local { .. } => "ellipse",
        };
        let name = if info.name.is_empty() {
            format!("{n}")
        } else {
            info.name.clone()
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape={}];",
            n.raw(),
            escape(&name),
            shape
        );
    }
    for e in pag.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            e.src.raw(),
            e.dst.raw(),
            escape(&e.kind.label())
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use crate::graph::PagBuilder;
    use crate::ids::TypeId;
    use crate::node::{NodeInfo, NodeKind};

    #[test]
    fn renders_nodes_and_edges() {
        let mut b = PagBuilder::new();
        let m = b.add_method("main");
        let o = b.add_node(NodeInfo {
            kind: NodeKind::Object { method: m },
            ty: TypeId(0),
            name: "o1".into(),
            is_application: true,
        });
        let x = b.add_node(NodeInfo {
            kind: NodeKind::Local { method: m },
            ty: TypeId(0),
            name: "x\"q".into(), // exercises escaping
            is_application: true,
        });
        b.add_edge(o, x, EdgeKind::New);
        let dot = to_dot(&b.freeze());
        assert!(dot.starts_with("digraph pag {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("label=\"new\""));
        assert!(dot.contains("x\\\"q"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

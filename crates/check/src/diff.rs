//! Differential comparison of production answers against the oracle.
//!
//! The contract (see [`crate::oracle`]): every [`Answer::Complete`] must
//! equal the oracle's exact answer as a set of `(node, call string)`
//! pairs; `OutOfBudget` answers are skipped. A solver-complete /
//! oracle-incomplete pair is a mismatch unless the oracle merely hit its
//! practical step cap.

use crate::oracle::{IncompleteReason, OState, Oracle, OracleAnswer, OracleConfig};
use parcfl_core::{Answer, Ctx};
use parcfl_pag::{NodeId, Pag};
use std::collections::HashMap;

/// Runs `f` on a thread with a deep stack (64 MiB) and returns its result.
///
/// The oracle's mutual recursion nests up to `max_recursion_depth` native
/// frames; default thread stacks are not sized for that.
pub fn with_big_stack<T, F>(f: F) -> T
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn_scoped(s, f)
            .expect("spawn oracle thread")
            .join()
            .expect("oracle thread panicked")
    })
}

/// Per-PAG cache of oracle `PointsTo` answers. Oracle answers depend only
/// on the graph and the context-sensitivity flag, so one cache serves
/// every mode, backend, budget and perturbation run over the same PAG.
pub struct OracleCache<'a> {
    pag: &'a Pag,
    cfg: OracleConfig,
    answers: HashMap<NodeId, OracleAnswer>,
}

impl<'a> OracleCache<'a> {
    /// Creates an empty cache for `pag`.
    pub fn new(pag: &'a Pag, cfg: OracleConfig) -> Self {
        OracleCache {
            pag,
            cfg,
            answers: HashMap::new(),
        }
    }

    /// The oracle's `PointsTo(q, ∅)` answer, computed on first use.
    pub fn points_to(&mut self, q: NodeId) -> &OracleAnswer {
        if !self.answers.contains_key(&q) {
            let pag = self.pag;
            let cfg = self.cfg.clone();
            let a = with_big_stack(move || Oracle::with_config(pag, cfg).points_to(q));
            self.answers.insert(q, a);
        }
        &self.answers[&q]
    }

    /// Precomputes (in one big-stack hop, sharing the oracle memo across
    /// queries) the answers for all `queries`.
    pub fn warm(&mut self, queries: &[NodeId]) {
        let missing: Vec<NodeId> = queries
            .iter()
            .copied()
            .filter(|q| !self.answers.contains_key(q))
            .collect();
        if missing.is_empty() {
            return;
        }
        let pag = self.pag;
        let cfg = self.cfg.clone();
        let computed = with_big_stack(move || {
            let mut oracle = Oracle::with_config(pag, cfg);
            missing
                .into_iter()
                .map(|q| (q, oracle.points_to(q)))
                .collect::<Vec<_>>()
        });
        self.answers.extend(computed);
    }
}

/// One differential disagreement.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The query variable.
    pub query: NodeId,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// Outcome of diffing one answer batch against the oracle.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Answers compared exactly (solver complete, oracle complete).
    pub compared: usize,
    /// Answers skipped because the solver ran out of budget.
    pub skipped_oob: usize,
    /// Answers skipped because the oracle hit its practical step cap.
    pub skipped_cap: usize,
    /// Disagreements found.
    pub mismatches: Vec<Mismatch>,
}

impl DiffReport {
    /// True when no disagreement was found.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Normalises a production answer to the oracle's representation: sorted,
/// deduplicated `(node, call string)` pairs.
pub fn normalize(answer: &[(NodeId, Ctx)]) -> Vec<OState> {
    let mut v: Vec<OState> = answer
        .iter()
        .map(|(n, c)| (*n, c.as_slice().to_vec()))
        .collect();
    v.sort();
    v.dedup();
    v
}

/// Diffs a batch of production `PointsTo` answers against the oracle.
pub fn diff_answers(answers: &[(NodeId, Answer)], oracle: &mut OracleCache<'_>) -> DiffReport {
    let completed: Vec<NodeId> = answers
        .iter()
        .filter(|(_, a)| a.complete().is_some())
        .map(|(q, _)| *q)
        .collect();
    oracle.warm(&completed);
    let mut report = DiffReport::default();
    for (q, ans) in answers {
        let Some(got) = ans.complete() else {
            report.skipped_oob += 1;
            continue;
        };
        match oracle.points_to(*q) {
            OracleAnswer::Incomplete(IncompleteReason::StepCap) => report.skipped_cap += 1,
            OracleAnswer::Incomplete(reason) => {
                report.mismatches.push(Mismatch {
                    query: *q,
                    detail: format!(
                        "solver answered Complete but the oracle diverges ({reason:?}): \
                         a completed production query cannot contain a re-entrant or \
                         unbounded computation chain"
                    ),
                });
            }
            OracleAnswer::Complete(want) => {
                report.compared += 1;
                let got = normalize(got);
                if &got != want {
                    report.mismatches.push(Mismatch {
                        query: *q,
                        detail: describe_set_diff(&got, want),
                    });
                }
            }
        }
    }
    report
}

fn describe_set_diff(got: &[OState], want: &[OState]) -> String {
    let spurious: Vec<&OState> = got.iter().filter(|s| !want.contains(s)).collect();
    let missing: Vec<&OState> = want.iter().filter(|s| !got.contains(s)).collect();
    let mut parts = vec![format!(
        "answer set differs from oracle (got {} states, want {})",
        got.len(),
        want.len()
    )];
    if !spurious.is_empty() {
        parts.push(format!(
            "spurious: {:?}",
            &spurious[..spurious.len().min(4)]
        ));
    }
    if !missing.is_empty() {
        parts.push(format!("missing: {:?}", &missing[..missing.len().min(4)]));
    }
    parts.join("; ")
}

//! # parcfl-check — correctness tooling
//!
//! Three independent pillars that cross-check the production analysis
//! (see DESIGN.md §10):
//!
//! 1. [`oracle`] — a small, obviously-correct CFL-reachability solver
//!    (plain `Vec` contexts, no jmp store, no budget) used as the exact
//!    reference for differential testing on tiny/small programs.
//! 2. [`andersen_check`] — every completed demand answer must be a subset
//!    of the Andersen whole-program solution on the same PAG; the size
//!    gap is the demand analysis' precision.
//! 3. [`fuzz`] — a seeded scenario fuzzer driving the simulated backend
//!    through perturbed interleavings (and the threaded backend through
//!    real ones), differential-checking every run; failures are shrunk
//!    ([`shrink`]) to minimal counterexamples and serialised
//!    ([`snapshot`]) for the regression corpus in `tests/corpus/`.
//!
//! Exposed to users as `parcfl check` (see `parcfl check --help`).

#![warn(missing_docs)]

pub mod andersen_check;
pub mod diff;
pub mod fuzz;
pub mod oracle;
pub mod seed;
pub mod shrink;
pub mod snapshot;

pub use andersen_check::{check_soundness, check_soundness_against, SoundnessReport};
pub use diff::{diff_answers, with_big_stack, DiffReport, Mismatch, OracleCache};
pub use fuzz::{
    failure_detail, incremental_divergence, matrix_worker_divergence, run_fuzz, scenario_fails,
    FuzzConfig, FuzzFailure, FuzzReport,
};
pub use oracle::{IncompleteReason, Oracle, OracleAnswer, OracleConfig};
pub use seed::{test_seed, DEFAULT_SEED, SEED_ENV};
pub use shrink::{shrink, ShrinkStats};
pub use snapshot::Scenario;

//! One seed to rule every randomized test.
//!
//! Every seeded harness in the repo — the differential fuzzer, the
//! threaded stress tests — derives its randomness from
//! [`test_seed`], so a failure seen in CI is reproduced locally by
//! exporting the same `PARCFL_TEST_SEED`. Failure messages always print
//! the seed.

/// Environment variable overriding the base test seed.
pub const SEED_ENV: &str = "PARCFL_TEST_SEED";

/// Fixed fallback seed used when [`SEED_ENV`] is unset or unparsable.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// The base seed for randomized tests: `PARCFL_TEST_SEED` if set (decimal
/// or `0x`-prefixed hex), else [`DEFAULT_SEED`].
pub fn test_seed() -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(v) => parse_seed(&v).unwrap_or(DEFAULT_SEED),
        Err(_) => DEFAULT_SEED,
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Derives a per-purpose sub-seed from `base` (splitmix64-style mixing,
/// so adjacent indices give uncorrelated streams).
pub fn derive(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn derive_differs_per_index() {
        assert_ne!(derive(1, 0), derive(1, 1));
        assert_ne!(derive(1, 0), derive(2, 0));
    }
}

//! Andersen soundness harness.
//!
//! The inclusion-based whole-program solution is a strict
//! over-approximation of every context-sensitive demand answer: it is
//! context-insensitive (all calling contexts conflated) and turns
//! `param`/`ret` edges into plain subset constraints, so any object a
//! demand `PointsTo(l, ∅)` query derives flows along edges Andersen also
//! propagates along. Every completed demand answer must therefore satisfy
//! `demand_pts(l) ⊆ andersen_pts(l)` — a cheap whole-suite soundness
//! check that needs no oracle recursion at all. The gap between the two
//! sizes is the precision the demand analysis buys.

use parcfl_andersen::{analyze, AndersenResult};
use parcfl_core::Answer;
use parcfl_pag::{NodeId, Pag};

/// Outcome of checking a batch of demand answers against the
/// inclusion-based solution.
#[derive(Clone, Debug, Default)]
pub struct SoundnessReport {
    /// Total answers inspected.
    pub queries: usize,
    /// Answers that completed (and were checked).
    pub completed: usize,
    /// Σ demand points-to set sizes over completed queries.
    pub demand_pts: usize,
    /// Σ inclusion-based points-to set sizes over the same queries.
    pub inclusion_pts: usize,
    /// Violations: `(query, object)` pairs present in the demand answer
    /// but absent from the inclusion-based solution.
    pub violations: Vec<(NodeId, NodeId)>,
}

impl SoundnessReport {
    /// True when every completed answer was a subset of the
    /// inclusion-based solution.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Demand-to-inclusion size ratio over completed queries (≤ 1.0 when
    /// sound; smaller is more precise). 1.0 when nothing completed.
    pub fn precision_ratio(&self) -> f64 {
        if self.inclusion_pts == 0 {
            1.0
        } else {
            self.demand_pts as f64 / self.inclusion_pts as f64
        }
    }
}

/// Checks `answers` (demand `PointsTo` results) against a freshly computed
/// Andersen solution on `pag`.
pub fn check_soundness(pag: &Pag, answers: &[(NodeId, Answer)]) -> SoundnessReport {
    check_soundness_against(&analyze(pag), answers)
}

/// [`check_soundness`] against a precomputed solution (reuse it across
/// runs on the same PAG).
pub fn check_soundness_against(
    incl: &AndersenResult,
    answers: &[(NodeId, Answer)],
) -> SoundnessReport {
    let mut report = SoundnessReport {
        queries: answers.len(),
        ..SoundnessReport::default()
    };
    for (q, ans) in answers {
        let Some(objs) = ans.nodes() else { continue };
        report.completed += 1;
        report.demand_pts += objs.len();
        report.inclusion_pts += incl.pts_len(*q);
        for o in objs {
            if !incl.pts_contains(*q, o) {
                report.violations.push((*q, o));
            }
        }
    }
    report
}

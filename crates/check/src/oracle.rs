//! The independent naive oracle: a small, obviously-correct implementation
//! of the paper's CFL-reachability grammar used as the reference answer in
//! differential tests.
//!
//! Everything the production solver does for *performance* is absent here:
//! no jmp store, no budget, no τ thresholds, no context interner, no
//! virtual clocks. Contexts are plain `Vec<u32>` call strings, result sets
//! are `BTreeSet`s, and the mutual recursion of `PointsTo` / `FlowsTo` /
//! `ReachableNodes` is written directly off grammar rules (2) and (3).
//! The only state shared with the production design is the *semantics*:
//! the same edge rules, the same global-clearing behaviour, the same
//! load/store alias composition.
//!
//! ## The differential contract
//!
//! The production solver's budget abort is all-or-nothing: whenever it
//! returns [`Answer::Complete`](parcfl_core::Answer), the answer is the
//! exact grammar fixpoint — independent of budget, τ, mode, backend, or
//! interleaving. So the contract checked by `parcfl-check` is:
//!
//! * solver `Complete` ⇒ oracle completes with the *identical* set of
//!   `(node, call string)` pairs;
//! * solver `OutOfBudget` says nothing and is skipped.
//!
//! The oracle itself can fail to complete only on inputs where the
//! production solver would burn its budget anyway (re-entrant computation
//! chains, runaway context growth), so a solver-`Complete` /
//! oracle-[`Incomplete`](OracleAnswer::Incomplete) pair is itself reported
//! as a mismatch — see [`IncompleteReason`] for the argument per reason.

use parcfl_pag::{EdgeKind, NodeId, Pag};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// A call string, innermost call site last (same convention as
/// `parcfl_core::Ctx`).
pub type OCtx = Vec<u32>;

/// A `(node, call string)` traversal state.
pub type OState = (NodeId, OCtx);

/// Why the oracle abandoned a query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IncompleteReason {
    /// A nested call identical to one already in flight. The production
    /// solver detects exactly this situation and burns its remaining
    /// budget (`OutOfBudget`), so a completed solver answer can never
    /// coexist with this reason.
    Reentrant,
    /// A context grew past the structural bound (one stack slot per call
    /// site — a realizable stack in a recursion-free call graph never
    /// repeats a call site). Unbounded growth means an infinite state
    /// space, which the production solver can only answer `OutOfBudget`.
    CtxDepth,
    /// The mutual recursion exceeded the same depth bound the production
    /// solver guards with (it burns its budget there too).
    RecursionDepth,
    /// The traversal exceeded the oracle's practical step cap. Unlike the
    /// other reasons this is *not* evidence of solver misbehaviour — the
    /// differential harness skips (and counts) these instead of flagging
    /// a mismatch.
    StepCap,
}

/// An oracle answer: the exact fixpoint, or the reason it was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleAnswer {
    /// The exact answer set, sorted by `(node, call string)`.
    Complete(Vec<OState>),
    /// Abandoned; see [`IncompleteReason`].
    Incomplete(IncompleteReason),
}

impl OracleAnswer {
    /// The answer set if complete.
    pub fn complete(&self) -> Option<&[OState]> {
        match self {
            OracleAnswer::Complete(v) => Some(v),
            OracleAnswer::Incomplete(_) => None,
        }
    }
}

/// Oracle knobs. Only semantic knobs exist — there is no budget.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Match calling contexts (must equal the production config under
    /// test).
    pub context_sensitive: bool,
    /// Mutual-recursion depth guard, mirroring
    /// `SolverConfig::max_recursion_depth` (default 512).
    pub max_recursion_depth: u32,
    /// Practical work cap per query (work-list pops across all nested
    /// traversals); exceeding it yields
    /// [`IncompleteReason::StepCap`]. Default 50M.
    pub step_cap: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            context_sensitive: true,
            max_recursion_depth: 512,
            step_cap: 50_000_000,
        }
    }
}

type SetRef = Arc<BTreeSet<OState>>;

/// The oracle solver. Holds a memo of completed sub-computations that is
/// sound to reuse across queries on the same PAG (each entry is an exact
/// fixpoint depending only on the graph and the context-sensitivity flag).
pub struct Oracle<'a> {
    pag: &'a Pag,
    cfg: OracleConfig,
    /// Structural context bound: a realizable stack in a recursion-free
    /// call graph holds each call site at most once.
    max_ctx_depth: usize,
    memo_pts: HashMap<OState, SetRef>,
    memo_flows: HashMap<OState, SetRef>,
    memo_rch_bwd: HashMap<OState, SetRef>,
    memo_rch_fwd: HashMap<OState, SetRef>,
    on_stack_pts: HashSet<OState>,
    on_stack_flows: HashSet<OState>,
    on_stack_rch_bwd: HashSet<OState>,
    on_stack_rch_fwd: HashSet<OState>,
    depth: u32,
    steps: u64,
    fail: Option<IncompleteReason>,
}

impl<'a> Oracle<'a> {
    /// Creates an oracle over `pag` with default configuration.
    pub fn new(pag: &'a Pag) -> Self {
        Oracle::with_config(pag, OracleConfig::default())
    }

    /// Creates an oracle over `pag` with the given configuration.
    pub fn with_config(pag: &'a Pag, cfg: OracleConfig) -> Self {
        Oracle {
            pag,
            cfg,
            max_ctx_depth: pag.call_site_count() + 2,
            memo_pts: HashMap::new(),
            memo_flows: HashMap::new(),
            memo_rch_bwd: HashMap::new(),
            memo_rch_fwd: HashMap::new(),
            on_stack_pts: HashSet::new(),
            on_stack_flows: HashSet::new(),
            on_stack_rch_bwd: HashSet::new(),
            on_stack_rch_fwd: HashSet::new(),
            depth: 0,
            steps: 0,
            fail: None,
        }
    }

    /// Answers `PointsTo(l, ∅)` exactly.
    ///
    /// The mutual recursion can nest up to `max_recursion_depth` levels of
    /// native stack frames — call from a thread with a generous stack (see
    /// [`crate::diff::with_big_stack`]).
    pub fn points_to(&mut self, l: NodeId) -> OracleAnswer {
        self.reset_query();
        let set = self.pts(l, Vec::new());
        self.answer(set)
    }

    /// Answers `FlowsTo(o, ∅)` exactly.
    pub fn flows_to(&mut self, o: NodeId) -> OracleAnswer {
        self.reset_query();
        let set = self.flows(o, Vec::new());
        self.answer(set)
    }

    fn reset_query(&mut self) {
        self.on_stack_pts.clear();
        self.on_stack_flows.clear();
        self.on_stack_rch_bwd.clear();
        self.on_stack_rch_fwd.clear();
        self.depth = 0;
        self.steps = 0;
        self.fail = None;
    }

    fn answer(&mut self, set: SetRef) -> OracleAnswer {
        match self.fail {
            Some(reason) => OracleAnswer::Incomplete(reason),
            None => OracleAnswer::Complete(set.iter().cloned().collect()),
        }
    }

    fn empty() -> SetRef {
        Arc::new(BTreeSet::new())
    }

    /// One work-list pop; flags [`IncompleteReason::StepCap`] past the cap.
    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps > self.cfg.step_cap {
            self.fail = Some(IncompleteReason::StepCap);
            return false;
        }
        true
    }

    /// Depth guard shared by `pts` and `flows` (the production solver
    /// counts exactly these two frame kinds).
    fn enter(&mut self) -> bool {
        self.depth += 1;
        if self.depth > self.cfg.max_recursion_depth {
            self.fail = Some(IncompleteReason::RecursionDepth);
            return false;
        }
        true
    }

    fn pts(&mut self, l: NodeId, c: OCtx) -> SetRef {
        let key = (l, c);
        if self.fail.is_some() {
            return Self::empty();
        }
        if let Some(r) = self.memo_pts.get(&key) {
            return Arc::clone(r);
        }
        if !self.enter() {
            return Self::empty();
        }
        if !self.on_stack_pts.insert(key.clone()) {
            self.fail = Some(IncompleteReason::Reentrant);
            return Self::empty();
        }
        let out = self.pts_inner(key.0, &key.1);
        self.on_stack_pts.remove(&key);
        self.depth -= 1;
        if self.fail.is_none() {
            self.memo_pts.insert(key, Arc::clone(&out));
        }
        out
    }

    /// `PointsTo` worklist: backward traversal over incoming edges.
    fn pts_inner(&mut self, l: NodeId, c: &OCtx) -> SetRef {
        let sens = self.cfg.context_sensitive;
        let mut pts: BTreeSet<OState> = BTreeSet::new();
        let mut visited: HashSet<OState> = HashSet::new();
        let mut w: Vec<OState> = Vec::new();
        visited.insert((l, c.clone()));
        w.push((l, c.clone()));
        while let Some((x, cx)) = w.pop() {
            if !self.tick() {
                return Self::empty();
            }
            let mut has_load = false;
            for e in self.pag.incoming(x) {
                let step: Option<OState> = match e.kind {
                    EdgeKind::New => {
                        pts.insert((e.src, cx.clone()));
                        None
                    }
                    EdgeKind::AssignLocal => Some((e.src, cx.clone())),
                    EdgeKind::AssignGlobal => {
                        Some((e.src, if sens { Vec::new() } else { cx.clone() }))
                    }
                    EdgeKind::Param(i) => {
                        if !sens || cx.is_empty() {
                            Some((e.src, cx.clone()))
                        } else if *cx.last().expect("non-empty") == i.raw() {
                            let mut c2 = cx.clone();
                            c2.pop();
                            Some((e.src, c2))
                        } else {
                            None
                        }
                    }
                    EdgeKind::Ret(i) => {
                        if sens {
                            if cx.len() >= self.max_ctx_depth {
                                self.fail = Some(IncompleteReason::CtxDepth);
                                return Self::empty();
                            }
                            let mut c2 = cx.clone();
                            c2.push(i.raw());
                            Some((e.src, c2))
                        } else {
                            Some((e.src, cx.clone()))
                        }
                    }
                    EdgeKind::Load(_) => {
                        has_load = true;
                        None
                    }
                    EdgeKind::Store(_) => None,
                };
                if let Some(s) = step {
                    if visited.insert(s.clone()) {
                        w.push(s);
                    }
                }
            }
            if has_load {
                let rch = self.rch_bwd(x, cx);
                if self.fail.is_some() {
                    return Self::empty();
                }
                for s in rch.iter() {
                    if visited.insert(s.clone()) {
                        w.push(s.clone());
                    }
                }
            }
        }
        Arc::new(pts)
    }

    fn flows(&mut self, o: NodeId, c: OCtx) -> SetRef {
        let key = (o, c);
        if self.fail.is_some() {
            return Self::empty();
        }
        if let Some(r) = self.memo_flows.get(&key) {
            return Arc::clone(r);
        }
        if !self.enter() {
            return Self::empty();
        }
        if !self.on_stack_flows.insert(key.clone()) {
            self.fail = Some(IncompleteReason::Reentrant);
            return Self::empty();
        }
        let out = self.flows_inner(key.0, &key.1);
        self.on_stack_flows.remove(&key);
        self.depth -= 1;
        if self.fail.is_none() {
            self.memo_flows.insert(key, Arc::clone(&out));
        }
        out
    }

    /// `FlowsTo` worklist: forward traversal over outgoing edges,
    /// collecting every variable node reached.
    fn flows_inner(&mut self, o: NodeId, c: &OCtx) -> SetRef {
        let sens = self.cfg.context_sensitive;
        let mut reached: BTreeSet<OState> = BTreeSet::new();
        let mut visited: HashSet<OState> = HashSet::new();
        let mut w: Vec<OState> = Vec::new();
        visited.insert((o, c.clone()));
        w.push((o, c.clone()));
        while let Some((n, cn)) = w.pop() {
            if !self.tick() {
                return Self::empty();
            }
            if self.pag.kind(n).is_variable() {
                reached.insert((n, cn.clone()));
            }
            let mut has_store = false;
            for e in self.pag.outgoing(n) {
                let step: Option<OState> = match e.kind {
                    EdgeKind::New | EdgeKind::AssignLocal => Some((e.dst, cn.clone())),
                    EdgeKind::AssignGlobal => {
                        Some((e.dst, if sens { Vec::new() } else { cn.clone() }))
                    }
                    EdgeKind::Param(i) => {
                        if sens {
                            if cn.len() >= self.max_ctx_depth {
                                self.fail = Some(IncompleteReason::CtxDepth);
                                return Self::empty();
                            }
                            let mut c2 = cn.clone();
                            c2.push(i.raw());
                            Some((e.dst, c2))
                        } else {
                            Some((e.dst, cn.clone()))
                        }
                    }
                    EdgeKind::Ret(i) => {
                        if !sens || cn.is_empty() {
                            Some((e.dst, cn.clone()))
                        } else if *cn.last().expect("non-empty") == i.raw() {
                            let mut c2 = cn.clone();
                            c2.pop();
                            Some((e.dst, c2))
                        } else {
                            None
                        }
                    }
                    EdgeKind::Store(_) => {
                        has_store = true;
                        None
                    }
                    EdgeKind::Load(_) => None,
                };
                if let Some(s) = step {
                    if visited.insert(s.clone()) {
                        w.push(s);
                    }
                }
            }
            if has_store {
                let rch = self.rch_fwd(n, cn);
                if self.fail.is_some() {
                    return Self::empty();
                }
                for s in rch.iter() {
                    if visited.insert(s.clone()) {
                        w.push(s.clone());
                    }
                }
            }
        }
        Arc::new(reached)
    }

    /// Backward `ReachableNodes`: `x` has incoming loads `x ←ld(f)− p`;
    /// for every store `q ←st(f)− y` with `p` alias `q`, `(y, c″)` is
    /// reachable.
    fn rch_bwd(&mut self, x: NodeId, c: OCtx) -> SetRef {
        let key = (x, c);
        if self.fail.is_some() {
            return Self::empty();
        }
        if let Some(r) = self.memo_rch_bwd.get(&key) {
            return Arc::clone(r);
        }
        if !self.on_stack_rch_bwd.insert(key.clone()) {
            self.fail = Some(IncompleteReason::Reentrant);
            return Self::empty();
        }
        let mut out: BTreeSet<OState> = BTreeSet::new();
        let loads: Vec<_> = self
            .pag
            .incoming(key.0)
            .iter()
            .filter_map(|e| match e.kind {
                EdgeKind::Load(f) => Some((e.src, f)),
                _ => None,
            })
            .collect();
        for (p, f) in loads {
            if self.pag.stores_of(f).is_empty() {
                continue;
            }
            // alias = ∪ FlowsTo(o, c′) over (o, c′) ∈ PointsTo(p, c).
            let mut alias: HashMap<NodeId, BTreeSet<OCtx>> = HashMap::new();
            let pts = self.pts(p, key.1.clone());
            if self.fail.is_some() {
                return Self::empty();
            }
            for (o, c0) in pts.iter() {
                let ft = self.flows(*o, c0.clone());
                if self.fail.is_some() {
                    return Self::empty();
                }
                for (q2, c2) in ft.iter() {
                    alias.entry(*q2).or_default().insert(c2.clone());
                }
            }
            for &(q, y) in self.pag.stores_of(f) {
                if let Some(cs) = alias.get(&q) {
                    for c2 in cs {
                        out.insert((y, c2.clone()));
                    }
                }
            }
        }
        self.on_stack_rch_bwd.remove(&key);
        let out = Arc::new(out);
        self.memo_rch_bwd.insert(key, Arc::clone(&out));
        out
    }

    /// Forward dual: `y` has outgoing stores; loads of aliased bases
    /// receive.
    fn rch_fwd(&mut self, y: NodeId, c: OCtx) -> SetRef {
        let key = (y, c);
        if self.fail.is_some() {
            return Self::empty();
        }
        if let Some(r) = self.memo_rch_fwd.get(&key) {
            return Arc::clone(r);
        }
        if !self.on_stack_rch_fwd.insert(key.clone()) {
            self.fail = Some(IncompleteReason::Reentrant);
            return Self::empty();
        }
        let mut out: BTreeSet<OState> = BTreeSet::new();
        let stores: Vec<_> = self
            .pag
            .outgoing(key.0)
            .iter()
            .filter_map(|e| match e.kind {
                EdgeKind::Store(f) => Some((e.dst, f)),
                _ => None,
            })
            .collect();
        for (q, f) in stores {
            if self.pag.loads_of(f).is_empty() {
                continue;
            }
            let mut alias: HashMap<NodeId, BTreeSet<OCtx>> = HashMap::new();
            let pts = self.pts(q, key.1.clone());
            if self.fail.is_some() {
                return Self::empty();
            }
            for (o, c0) in pts.iter() {
                let ft = self.flows(*o, c0.clone());
                if self.fail.is_some() {
                    return Self::empty();
                }
                for (p2, c2) in ft.iter() {
                    alias.entry(*p2).or_default().insert(c2.clone());
                }
            }
            for &(p, x) in self.pag.loads_of(f) {
                if let Some(cs) = alias.get(&p) {
                    for c2 in cs {
                        out.insert((x, c2.clone()));
                    }
                }
            }
        }
        self.on_stack_rch_fwd.remove(&key);
        let out = Arc::new(out);
        self.memo_rch_fwd.insert(key, Arc::clone(&out));
        out
    }
}

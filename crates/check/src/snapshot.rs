//! Self-contained failing scenarios and their on-disk snapshot format.
//!
//! A [`Scenario`] bundles everything needed to replay one analysis run:
//! the PAG, the query set, the mode/backend/thread configuration, the
//! solver knobs and the optional simulator perturbation. The fuzzer turns
//! a mismatching iteration into a `Scenario`, the shrinker minimises it,
//! and [`Scenario::to_snapshot`] serialises the result as a small text
//! file (conventionally `*.snap`) checked into `tests/corpus/`.
//!
//! ## Snapshot format v1
//!
//! Line-oriented text; `#` starts a comment. The graph is stored in the
//! canonical form produced by `parcfl_synth::mutate::canonicalize` (node
//! names, types and method identities scrubbed — only what the solver's
//! semantics depend on survives), so parsing rebuilds a graph that is
//! analysis-equivalent, not byte-equal, to the original.
//!
//! ```text
//! # free-form comment
//! run mode=dq backend=sim threads=3 fetch=1 budget=75000 tauf=100 tauu=100 ctx=1 memo=0 chaos=0 engine=demand state=dense packed=1 trace=off
//! perturb pseed=7 jitter=3 window=4 scramble=1 evict=0   (optional)
//! store cap=64                                           (optional)
//! counts nodes=5 fields=2 callsites=1
//! node 0 local 1       # node <id> <local|global|obj> <is_application>
//! node 1 obj 0
//! edge 1 0 new         # edge <src> <dst> <kind> [<field or call-site id>]
//! edge 0 2 ld 1
//! query 0              # one per demand PointsTo query
//! ```
//!
//! Edge kind tokens: `new`, `assign_l`, `assign_g`, `ld <field>`,
//! `st <field>`, `param <site>`, `ret <site>`.
//!
//! ## Incremental (mutate-then-requery) scenarios
//!
//! A scenario may carry an edit script: the run line then has a
//! `delta=<n>` key declaring the op count and, after the query lines,
//! one `delta add|del <src> <dst> <kind> [payload]` line per op (same
//! kind tokens as `edge`). Replay runs the queries cold through an
//! [`parcfl_runtime::AnalysisSession`], applies each op as its own
//! [`PagDelta`] (selective invalidation), re-submits after each, and
//! reports the final warm answers. The optional `chaosinval=1` run key
//! enables [`SolverConfig::chaos_skip_invalidation`] — the fault
//! injection that swaps the graph without invalidating warm state, which
//! the differential battery must catch. Both keys are omitted when
//! inactive so legacy snapshots stay byte-identical. The session path
//! has no simulator perturbation hook, so `perturb` is ignored for
//! delta scenarios (the fuzzer never samples both).

use parcfl_core::{SolverConfig, StateBackend};
use parcfl_pag::{
    CallSiteId, DeltaOp, Edge, EdgeKind, FieldId, NodeId, NodeInfo, NodeKind, Pag, PagBuilder,
    PagDelta,
};
use parcfl_runtime::{
    run_matrix, run_simulated_batch, run_threaded, schedule_with_cap, AnalysisSession, Backend,
    DeltaReport, Engine, Mode, RunConfig, RunResult, SimPerturb, TraceLevel,
};
use parcfl_synth::mutate::canonical_types;
use std::fmt::Write as _;

/// A complete, replayable analysis run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The pointer-assignment graph under analysis.
    pub pag: Pag,
    /// Demand `PointsTo` query variables.
    pub queries: Vec<NodeId>,
    /// Parallelisation strategy.
    pub mode: Mode,
    /// Execution backend.
    pub backend: Backend,
    /// Worker count.
    pub threads: usize,
    /// Solver knobs (budget, τ, sensitivity, memoisation, fault
    /// injection); `data_sharing` is overridden by `mode` at run time.
    pub solver: SolverConfig,
    /// Simulated cost of one work-list fetch.
    pub fetch_cost: u64,
    /// Seeded simulator perturbation (simulated backend only).
    pub perturb: Option<SimPerturb>,
    /// Jmp-store entry cap (simulated backend only; `None` = unbounded).
    pub store_cap: Option<usize>,
    /// Solver engine: the demand work-list solver (default) or the
    /// whole-program matrix backend. Under `Engine::Matrix`,
    /// `mode`/`backend` are inert but `threads` sets the sweep worker
    /// count (answers are bit-identical at every worker count).
    pub engine: Engine,
    /// Trace recording level. Tracing is observation-only by contract,
    /// so fuzzing this dimension checks that no recorder perturbs
    /// answers or deterministic counters.
    pub trace_level: TraceLevel,
    /// Mutate-then-requery edit script. Empty means a plain one-shot
    /// run; non-empty routes [`Self::run`] through an analysis session
    /// that answers cold, applies each op as its own delta (selective
    /// invalidation of jmp/memo/schedule state) and re-queries warm.
    pub deltas: Vec<DeltaOp>,
}

impl Scenario {
    /// The run configuration this scenario describes.
    pub fn run_config(&self) -> RunConfig {
        let mut cfg =
            RunConfig::new(self.mode, self.threads, self.backend).with_solver(self.solver.clone());
        cfg.fetch_cost = self.fetch_cost;
        cfg.perturb = self.perturb;
        cfg.engine = self.engine;
        cfg.tracing = self.trace_level;
        cfg
    }

    /// Replays the scenario once and returns the answers. Scenarios
    /// with an edit script return the final warm re-query result (see
    /// [`Self::run_incremental`]).
    pub fn run(&self) -> RunResult {
        if !self.deltas.is_empty() {
            return self.run_incremental().0;
        }
        let cfg = self.run_config();
        if self.engine == Engine::Matrix {
            return run_matrix(&self.pag, &self.queries, &cfg);
        }
        match self.backend {
            Backend::Threaded => run_threaded(&self.pag, &self.queries, &cfg),
            Backend::Simulated => {
                let store = match self.store_cap {
                    Some(cap) => parcfl_core::SharedJmpStore::timestamped().with_max_entries(cap),
                    None => parcfl_core::SharedJmpStore::timestamped(),
                };
                let schedule = schedule_with_cap(&self.pag, &self.queries, self.mode, None);
                run_simulated_batch(&self.pag, &schedule, &cfg, &store, 0).0
            }
        }
    }

    /// Replays the mutate-then-requery script: answers the query set
    /// cold, then for each edit op applies a single-op [`PagDelta`]
    /// through [`AnalysisSession::apply_delta`] (selective warm-state
    /// invalidation) and re-submits the same queries. Returns the final
    /// warm result, the edited graph, and one [`DeltaReport`] per op.
    /// `perturb` has no session hook and is ignored here.
    pub fn run_incremental(&self) -> (RunResult, Pag, Vec<DeltaReport>) {
        let mut session = AnalysisSession::new(&self.pag)
            .with_threads(self.threads)
            .with_solver(self.solver.clone())
            .with_engine(self.engine)
            .with_tracing(self.trace_level)
            .with_fetch_cost(self.fetch_cost);
        if let Some(cap) = self.store_cap {
            session = session.with_store_budget(cap);
        }
        let mut result = session.submit(&self.queries, self.mode, self.backend);
        let mut reports = Vec::with_capacity(self.deltas.len());
        for op in &self.deltas {
            let mut delta = PagDelta::new();
            delta.push(*op);
            reports.push(session.apply_delta(&delta));
            result = session.submit(&self.queries, self.mode, self.backend);
        }
        let pag = session.pag().clone();
        (result, pag, reports)
    }

    /// The graph after the whole edit script: every op folded into one
    /// [`PagDelta`] and applied from scratch. Ops apply in order to the
    /// same edge set, so this equals the one-at-a-time application the
    /// incremental replay performs — it is the graph cold-run oracles
    /// must be consulted against.
    pub fn final_pag(&self) -> Pag {
        if self.deltas.is_empty() {
            return self.pag.clone();
        }
        let mut delta = PagDelta::new();
        for op in &self.deltas {
            delta.push(*op);
        }
        self.pag.apply_delta(&delta).0
    }

    /// Serialises the scenario in snapshot format v1. The graph should
    /// already be canonical (see module docs); serialisation stores only
    /// canonical node attributes either way.
    pub fn to_snapshot(&self) -> String {
        let mut s = String::new();
        s.push_str("# parcfl-check counterexample snapshot v1\n");
        s.push_str("# Replay: parcfl check --replay <this file>\n");
        let _ = write!(
            s,
            "run mode={} backend={} threads={} fetch={} budget={} tauf={} tauu={} ctx={} memo={} chaos={} engine={} state={} packed={} trace={}",
            match self.mode {
                Mode::Naive => "naive",
                Mode::DataSharing => "d",
                Mode::DataSharingSched => "dq",
            },
            match self.backend {
                Backend::Simulated => "sim",
                Backend::Threaded => "threaded",
            },
            self.threads,
            self.fetch_cost,
            self.solver.budget,
            self.solver.tau_finished,
            self.solver.tau_unfinished,
            self.solver.context_sensitive as u8,
            self.solver.memoize as u8,
            self.solver.chaos_jmp_ignore_ctx as u8,
            self.engine.name(),
            self.solver.state.name(),
            self.solver.packed as u8,
            match self.trace_level {
                TraceLevel::Off => "off",
                TraceLevel::Spans => "spans",
                TraceLevel::Full => "full",
            },
        );
        // Both keys are omitted when inactive so pre-delta corpus files
        // round-trip byte-identically.
        if !self.deltas.is_empty() {
            let _ = write!(s, " delta={}", self.deltas.len());
        }
        if self.solver.chaos_skip_invalidation {
            s.push_str(" chaosinval=1");
        }
        s.push('\n');
        if let Some(p) = self.perturb {
            let _ = writeln!(
                s,
                "perturb pseed={} jitter={} window={} scramble={} evict={}",
                p.seed, p.fetch_jitter, p.pick_window, p.scramble_ties as u8, p.evict_period
            );
        }
        if let Some(cap) = self.store_cap {
            let _ = writeln!(s, "store cap={cap}");
        }
        let _ = writeln!(
            s,
            "counts nodes={} fields={} callsites={}",
            self.pag.node_count(),
            self.pag.types().field_count(),
            self.pag.call_site_count()
        );
        for n in self.pag.node_ids() {
            let info = self.pag.node(n);
            let kind = match info.kind {
                NodeKind::Local { .. } => "local",
                NodeKind::Global => "global",
                NodeKind::Object { .. } => "obj",
            };
            let _ = writeln!(s, "node {} {} {}", n.raw(), kind, info.is_application as u8);
        }
        for e in self.pag.edges() {
            let _ = writeln!(
                s,
                "edge {} {} {}",
                e.src.raw(),
                e.dst.raw(),
                kind_token(e.kind)
            );
        }
        for q in &self.queries {
            let _ = writeln!(s, "query {}", q.raw());
        }
        for op in &self.deltas {
            let (verb, e) = match op {
                DeltaOp::AddEdge(e) => ("add", e),
                DeltaOp::RemoveEdge(e) => ("del", e),
            };
            let _ = writeln!(
                s,
                "delta {verb} {} {} {}",
                e.src.raw(),
                e.dst.raw(),
                kind_token(e.kind)
            );
        }
        s
    }

    /// Parses snapshot format v1 back into a scenario.
    pub fn from_snapshot(text: &str) -> Result<Scenario, String> {
        let mut mode = Mode::Naive;
        let mut backend = Backend::Simulated;
        let mut threads = 1usize;
        let mut fetch_cost = 1u64;
        let mut solver = SolverConfig::default();
        let mut engine = Engine::Demand;
        let mut trace_level = TraceLevel::Off;
        let mut perturb: Option<SimPerturb> = None;
        let mut store_cap: Option<usize> = None;
        let mut builder: Option<PagBuilder> = None;
        let mut declared_nodes = 0usize;
        let mut declared_deltas: Option<usize> = None;
        let mut queries: Vec<NodeId> = Vec::new();
        let mut edges: Vec<(NodeId, NodeId, EdgeKind)> = Vec::new();
        let mut deltas: Vec<DeltaOp> = Vec::new();

        for (ln, raw_line) in text.lines().enumerate() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("line {}: {m}", ln + 1);
            let mut toks = line.split_whitespace();
            match toks.next().unwrap() {
                "run" => {
                    for kv in toks {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad run token `{kv}`")))?;
                        match k {
                            "mode" => {
                                mode = match v {
                                    "naive" => Mode::Naive,
                                    "d" => Mode::DataSharing,
                                    "dq" => Mode::DataSharingSched,
                                    _ => return Err(err(format!("unknown mode `{v}`"))),
                                }
                            }
                            "backend" => {
                                backend = match v {
                                    "sim" => Backend::Simulated,
                                    "threaded" => Backend::Threaded,
                                    _ => return Err(err(format!("unknown backend `{v}`"))),
                                }
                            }
                            "threads" => threads = parse(v, &err)?,
                            "fetch" => fetch_cost = parse(v, &err)?,
                            "budget" => solver.budget = parse(v, &err)?,
                            "tauf" => solver.tau_finished = parse(v, &err)?,
                            "tauu" => solver.tau_unfinished = parse(v, &err)?,
                            "ctx" => solver.context_sensitive = parse::<u8, _>(v, &err)? != 0,
                            "memo" => solver.memoize = parse::<u8, _>(v, &err)? != 0,
                            "chaos" => solver.chaos_jmp_ignore_ctx = parse::<u8, _>(v, &err)? != 0,
                            // `engine`/`state`/`packed`/`trace` are absent
                            // in older corpus files; missing keys keep the
                            // defaults (demand engine, default state
                            // backend, packed scans on, tracing off).
                            "engine" => engine = v.parse::<Engine>().map_err(&err)?,
                            "state" => solver.state = v.parse::<StateBackend>().map_err(&err)?,
                            "packed" => solver.packed = parse::<u8, _>(v, &err)? != 0,
                            "trace" => {
                                trace_level = TraceLevel::parse(v)
                                    .ok_or_else(|| err(format!("unknown trace level `{v}`")))?
                            }
                            // `delta`/`chaosinval` are absent in
                            // pre-incremental corpus files: no edit
                            // script, no fault injection.
                            "delta" => declared_deltas = Some(parse(v, &err)?),
                            "chaosinval" => {
                                solver.chaos_skip_invalidation = parse::<u8, _>(v, &err)? != 0
                            }
                            _ => return Err(err(format!("unknown run key `{k}`"))),
                        }
                    }
                }
                "perturb" => {
                    let mut p = SimPerturb::default();
                    for kv in toks {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad perturb token `{kv}`")))?;
                        match k {
                            "pseed" => p.seed = parse(v, &err)?,
                            "jitter" => p.fetch_jitter = parse(v, &err)?,
                            "window" => p.pick_window = parse(v, &err)?,
                            "scramble" => p.scramble_ties = parse::<u8, _>(v, &err)? != 0,
                            "evict" => p.evict_period = parse(v, &err)?,
                            _ => return Err(err(format!("unknown perturb key `{k}`"))),
                        }
                    }
                    perturb = Some(p);
                }
                "store" => {
                    for kv in toks {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad store token `{kv}`")))?;
                        match k {
                            "cap" => store_cap = Some(parse(v, &err)?),
                            _ => return Err(err(format!("unknown store key `{k}`"))),
                        }
                    }
                }
                "counts" => {
                    let mut nodes = 0usize;
                    let mut fields = 1usize;
                    let mut callsites = 0usize;
                    for kv in toks {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad counts token `{kv}`")))?;
                        match k {
                            "nodes" => nodes = parse(v, &err)?,
                            "fields" => fields = parse(v, &err)?,
                            "callsites" => callsites = parse(v, &err)?,
                            _ => return Err(err(format!("unknown counts key `{k}`"))),
                        }
                    }
                    let (types, _) = canonical_types(fields);
                    let mut b = PagBuilder::with_types(types);
                    b.add_method("m");
                    for _ in 0..callsites {
                        b.fresh_call_site();
                    }
                    declared_nodes = nodes;
                    builder = Some(b);
                }
                "node" => {
                    let b = builder
                        .as_mut()
                        .ok_or_else(|| err("node before counts".into()))?;
                    let idx: u32 = parse(next(&mut toks, &err)?, &err)?;
                    let kind_tok = next(&mut toks, &err)?;
                    let app = parse::<u8, _>(next(&mut toks, &err)?, &err)? != 0;
                    let m0 = parcfl_pag::MethodId::new(0);
                    let kind = match kind_tok {
                        "local" => NodeKind::Local { method: m0 },
                        "global" => NodeKind::Global,
                        "obj" => NodeKind::Object { method: m0 },
                        _ => return Err(err(format!("unknown node kind `{kind_tok}`"))),
                    };
                    let got = b.add_node(NodeInfo {
                        kind,
                        ty: parcfl_pag::TypeId::new(0),
                        name: format!("n{idx}"),
                        is_application: app,
                    });
                    if got.raw() != idx {
                        return Err(err(format!(
                            "node ids must be dense and in order (expected {}, saw {idx})",
                            got.raw()
                        )));
                    }
                }
                "edge" => {
                    let src = NodeId::new(parse(next(&mut toks, &err)?, &err)?);
                    let dst = NodeId::new(parse(next(&mut toks, &err)?, &err)?);
                    let kind = parse_kind(&mut toks, &err)?;
                    edges.push((src, dst, kind));
                }
                "query" => {
                    queries.push(NodeId::new(parse(next(&mut toks, &err)?, &err)?));
                }
                "delta" => {
                    let verb = next(&mut toks, &err)?;
                    let src = NodeId::new(parse(next(&mut toks, &err)?, &err)?);
                    let dst = NodeId::new(parse(next(&mut toks, &err)?, &err)?);
                    let kind = parse_kind(&mut toks, &err)?;
                    let edge = Edge { src, dst, kind };
                    deltas.push(match verb {
                        "add" => DeltaOp::AddEdge(edge),
                        "del" => DeltaOp::RemoveEdge(edge),
                        v => return Err(err(format!("unknown delta verb `{v}`"))),
                    });
                }
                k => return Err(err(format!("unknown directive `{k}`"))),
            }
        }

        let mut b = builder.ok_or("snapshot has no `counts` line")?;
        for (src, dst, kind) in edges {
            if src.index() >= declared_nodes || dst.index() >= declared_nodes {
                return Err(format!("edge endpoint out of range ({src:?} -> {dst:?})"));
            }
            b.add_edge(src, dst, kind);
        }
        let pag = b.freeze();
        if pag.node_count() != declared_nodes {
            return Err(format!(
                "declared {declared_nodes} nodes but parsed {}",
                pag.node_count()
            ));
        }
        for q in &queries {
            if q.index() >= declared_nodes {
                return Err(format!("query {q:?} out of range"));
            }
        }
        match declared_deltas {
            Some(n) if n != deltas.len() => {
                return Err(format!(
                    "declared {n} delta ops but parsed {}",
                    deltas.len()
                ))
            }
            None if !deltas.is_empty() => {
                return Err("delta lines without a `delta=` run key".into())
            }
            _ => {}
        }
        for op in &deltas {
            let e = op.edge();
            if e.src.index() >= declared_nodes || e.dst.index() >= declared_nodes {
                return Err(format!(
                    "delta endpoint out of range ({:?} -> {:?})",
                    e.src, e.dst
                ));
            }
        }
        Ok(Scenario {
            pag,
            queries,
            mode,
            backend,
            threads,
            solver,
            fetch_cost,
            perturb,
            store_cap,
            engine,
            trace_level,
            deltas,
        })
    }
}

/// The snapshot token for an edge kind (shared by `edge` and `delta`
/// lines).
fn kind_token(kind: EdgeKind) -> String {
    match kind {
        EdgeKind::New => "new".to_string(),
        EdgeKind::AssignLocal => "assign_l".to_string(),
        EdgeKind::AssignGlobal => "assign_g".to_string(),
        EdgeKind::Load(f) => format!("ld {}", f.raw()),
        EdgeKind::Store(f) => format!("st {}", f.raw()),
        EdgeKind::Param(i) => format!("param {}", i.raw()),
        EdgeKind::Ret(i) => format!("ret {}", i.raw()),
    }
}

/// Parses an edge-kind token (plus payload where the kind takes one).
fn parse_kind<'t>(
    toks: &mut impl Iterator<Item = &'t str>,
    err: &impl Fn(String) -> String,
) -> Result<EdgeKind, String> {
    Ok(match next(toks, err)? {
        "new" => EdgeKind::New,
        "assign_l" => EdgeKind::AssignLocal,
        "assign_g" => EdgeKind::AssignGlobal,
        "ld" => EdgeKind::Load(FieldId::new(parse(next(toks, err)?, err)?)),
        "st" => EdgeKind::Store(FieldId::new(parse(next(toks, err)?, err)?)),
        "param" => EdgeKind::Param(CallSiteId::new(parse(next(toks, err)?, err)?)),
        "ret" => EdgeKind::Ret(CallSiteId::new(parse(next(toks, err)?, err)?)),
        k => return Err(err(format!("unknown edge kind `{k}`"))),
    })
}

fn next<'t>(
    toks: &mut impl Iterator<Item = &'t str>,
    err: &impl Fn(String) -> String,
) -> Result<&'t str, String> {
    toks.next().ok_or_else(|| err("missing token".into()))
}

fn parse<T: std::str::FromStr, E: Fn(String) -> String>(v: &str, err: &E) -> Result<T, String> {
    v.parse()
        .map_err(|_| err(format!("cannot parse number `{v}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcfl_synth::mutate::canonicalize;
    use parcfl_synth::{build_bench, Profile};

    fn sample_scenario() -> Scenario {
        let b = build_bench(&Profile::tiny(5));
        Scenario {
            pag: canonicalize(&b.pag),
            queries: b.queries[..4.min(b.queries.len())].to_vec(),
            mode: Mode::DataSharingSched,
            backend: Backend::Simulated,
            threads: 3,
            solver: SolverConfig {
                budget: 12_345,
                tau_finished: 0,
                tau_unfinished: 0,
                ..SolverConfig::default()
            },
            fetch_cost: 2,
            perturb: Some(SimPerturb {
                seed: 9,
                fetch_jitter: 3,
                pick_window: 4,
                scramble_ties: true,
                evict_period: 5,
            }),
            store_cap: Some(32),
            engine: Engine::Demand,
            trace_level: TraceLevel::Off,
            deltas: vec![],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let sc = sample_scenario();
        let text = sc.to_snapshot();
        let back = Scenario::from_snapshot(&text).expect("parse");
        assert_eq!(back.pag.node_count(), sc.pag.node_count());
        assert_eq!(back.pag.edges(), sc.pag.edges());
        assert_eq!(back.pag.call_site_count(), sc.pag.call_site_count());
        assert_eq!(back.pag.types().field_count(), sc.pag.types().field_count());
        assert_eq!(back.queries, sc.queries);
        assert_eq!(back.mode, sc.mode);
        assert_eq!(back.backend, sc.backend);
        assert_eq!(back.threads, sc.threads);
        assert_eq!(back.solver, sc.solver);
        assert_eq!(back.fetch_cost, sc.fetch_cost);
        assert_eq!(back.perturb, sc.perturb);
        assert_eq!(back.store_cap, sc.store_cap);
        assert_eq!(back.engine, sc.engine);
        assert_eq!(back.trace_level, sc.trace_level);
        // Serialising the parsed scenario reproduces the text exactly.
        assert_eq!(back.to_snapshot(), text);
    }

    #[test]
    fn engine_and_state_keys_default_when_absent() {
        // Older snapshots carry no engine/state/packed/trace keys: they
        // parse to the demand engine, the default state backend, packed
        // scans on and tracing off.
        let sc = sample_scenario();
        let legacy: String = sc
            .to_snapshot()
            .lines()
            .map(|l| {
                if l.starts_with("run ") {
                    l.split_whitespace()
                        .filter(|t| {
                            !t.starts_with("engine=")
                                && !t.starts_with("state=")
                                && !t.starts_with("packed=")
                                && !t.starts_with("trace=")
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = Scenario::from_snapshot(&legacy).expect("legacy parse");
        assert_eq!(back.engine, Engine::Demand);
        assert_eq!(back.solver.state, SolverConfig::default().state);
        assert!(back.solver.packed, "absent packed key defaults on");
        assert_eq!(back.trace_level, TraceLevel::Off, "absent trace key is off");

        // And the matrix engine round-trips through the run line, packed
        // flag and trace level included.
        let mut mat = sample_scenario();
        mat.engine = Engine::Matrix;
        mat.solver.state = StateBackend::Hash;
        mat.solver.packed = false;
        mat.trace_level = TraceLevel::Full;
        let back = Scenario::from_snapshot(&mat.to_snapshot()).expect("parse");
        assert_eq!(back.engine, Engine::Matrix);
        assert_eq!(back.solver.state, StateBackend::Hash);
        assert!(!back.solver.packed, "packed=0 round-trips");
        assert_eq!(back.trace_level, TraceLevel::Full, "trace=full round-trips");

        assert!(
            Scenario::from_snapshot("run trace=loud\ncounts nodes=0 fields=1 callsites=0").is_err(),
            "unknown trace level is rejected"
        );
    }

    #[test]
    fn delta_script_round_trips_and_legacy_stays_clean() {
        let mut sc = sample_scenario();
        // Sessions have no perturbation hook; delta scenarios carry none.
        sc.perturb = None;
        sc.solver.chaos_skip_invalidation = true;
        let e0 = sc.pag.edges()[0];
        sc.deltas = vec![
            DeltaOp::RemoveEdge(e0),
            DeltaOp::AddEdge(Edge {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                kind: EdgeKind::AssignLocal,
            }),
        ];
        let text = sc.to_snapshot();
        assert!(text.contains(" delta=2"), "run line declares the op count");
        assert!(text.contains(" chaosinval=1"), "fault key serialised");
        let back = Scenario::from_snapshot(&text).expect("parse");
        assert_eq!(back.deltas, sc.deltas);
        assert!(back.solver.chaos_skip_invalidation);
        assert_eq!(back.to_snapshot(), text, "byte-identical round trip");

        // A scenario without edits emits neither key nor any delta line.
        let plain = sample_scenario().to_snapshot();
        assert!(!plain.contains("delta"));
        assert!(!plain.contains("chaosinval"));

        // Declared count must match, ops need the run key, endpoints
        // must be in range, and the verb must be known.
        let short = text.replace(" delta=2", " delta=3");
        assert!(Scenario::from_snapshot(&short).is_err(), "count mismatch");
        let keyless = text.replace(" delta=2", "");
        assert!(Scenario::from_snapshot(&keyless).is_err(), "missing key");
        assert!(Scenario::from_snapshot(
            "run delta=1\ncounts nodes=1 fields=1 callsites=0\nnode 0 local 1\ndelta add 0 9 new"
        )
        .is_err());
        assert!(Scenario::from_snapshot(
            "run delta=1\ncounts nodes=1 fields=1 callsites=0\nnode 0 local 1\ndelta zap 0 0 new"
        )
        .is_err());
    }

    #[test]
    fn incremental_replay_matches_cold_run_on_final_graph() {
        let mut sc = sample_scenario();
        sc.perturb = None;
        sc.solver.budget = 5_000_000;
        let e0 = sc.pag.edges()[0];
        sc.deltas = vec![DeltaOp::RemoveEdge(e0)];
        let (warm, edited, reports) = sc.run_incremental();
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].noop, "removing a present edge is effective");
        assert_eq!(edited.edge_count(), sc.pag.edge_count() - 1);
        assert_eq!(edited.edges(), sc.final_pag().edges());
        let mut cold = sc.clone();
        cold.pag = sc.final_pag();
        cold.deltas.clear();
        assert_eq!(
            warm.sorted_answers(),
            cold.run().sorted_answers(),
            "warm incremental answers equal a cold run on the edited graph"
        );
        // run() routes through the incremental path for delta scenarios.
        assert_eq!(sc.run().sorted_answers(), warm.sorted_answers());
    }

    #[test]
    fn round_trip_preserves_answers() {
        let sc = sample_scenario();
        let back = Scenario::from_snapshot(&sc.to_snapshot()).expect("parse");
        let a = sc.run().sorted_answers();
        let b = back.run().sorted_answers();
        assert_eq!(a, b, "replay of a snapshot is bit-identical");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Scenario::from_snapshot("").is_err(), "no counts");
        assert!(
            Scenario::from_snapshot("counts nodes=1 fields=1 callsites=0\nnode 0 bogus 1").is_err()
        );
        assert!(Scenario::from_snapshot(
            "counts nodes=1 fields=1 callsites=0\nnode 0 local 1\nedge 0 5 new"
        )
        .is_err());
    }
}

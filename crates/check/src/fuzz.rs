//! The seeded schedule fuzzer: random scenarios, differential-checked.
//!
//! Each iteration derives an independent RNG stream from the base seed,
//! samples a scenario — synthetic program (tiny/small profile), query
//! subset, mode, backend, thread count, budget regime, τ thresholds,
//! memoisation, context sensitivity, state backend (hash/dense), solver
//! engine (demand/matrix), packed-adjacency scan path (on/off),
//! simulator perturbation, jmp-store cap — runs it, and checks every
//! completed answer two ways:
//!
//! * **exactly** against the naive oracle ([`crate::diff`]);
//! * **for soundness** against the Andersen whole-program solution
//!   ([`crate::andersen_check`]).
//!
//! Matrix-engine scenarios additionally replay at sweep worker counts
//! 1/2/4/8 — each count once with the sampled packed flag and once with
//! it flipped — and must produce bit-identical answers, traversed-step
//! totals and budget verdicts at every point of that grid (DESIGN.md
//! §11) — on top of the oracle checks above.
//!
//! A quarter of eligible iterations carry a mutate-then-requery edit
//! script ([`Scenario::deltas`]): the run answers cold, applies each PAG
//! delta with selective warm-state invalidation, and re-queries. All
//! oracle/soundness checks then run against the *edited* graph
//! ([`Scenario::final_pag`]), and [`incremental_divergence`] additionally
//! replays the edited graph cold — warm incremental answers must be
//! bit-identical. The `chaos_invalidation` self-test skips invalidation
//! on purpose and expects the battery to fail.
//!
//! On the first failing iteration the scenario is (optionally) shrunk to
//! a 1-minimal counterexample ([`crate::shrink`]) and returned along with
//! its snapshot. Everything is reproducible from `(seed, iteration)`.

use crate::andersen_check::check_soundness;
use crate::diff::{diff_answers, OracleCache};
use crate::oracle::OracleConfig;
use crate::seed::derive;
use crate::shrink::{shrink, ShrinkStats};
use crate::snapshot::Scenario;
use parcfl_core::{SolverConfig, StateBackend};
use parcfl_runtime::{Backend, Engine, Mode, SimPerturb, TraceLevel};
use parcfl_synth::mutate::sample_edits;
use parcfl_synth::{build_bench, Profile};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Fuzzer configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Iterations to run (stops early at the first failure).
    pub iters: u64,
    /// Base seed; each iteration uses an independent derived stream.
    pub seed: u64,
    /// Shrink the first failing scenario before returning it.
    pub shrink: bool,
    /// Every `n`-th iteration runs on real threads instead of the
    /// simulator (0 = simulator only).
    pub threaded_every: u64,
    /// Fault injection self-test: enable
    /// `SolverConfig::chaos_jmp_ignore_ctx` and bias scenarios toward the
    /// sharing modes that expose it. The fuzzer is expected to FAIL when
    /// this is on — it proves the harness catches real sharing bugs.
    pub chaos: bool,
    /// Include `Profile::small` in the program pool (otherwise tiny only).
    pub use_small: bool,
    /// Force the mutate-then-requery dimension on: every eligible
    /// (simulated, ample-budget) iteration carries an edit script
    /// instead of one in four.
    pub delta: bool,
    /// Fault injection self-test for the incremental path: enable
    /// `SolverConfig::chaos_skip_invalidation` (deltas swap the graph
    /// but leave every warm jmp/memo entry stale) and bias scenarios
    /// toward sharing modes, zero τ and ample budgets so the stale
    /// state is re-served. The fuzzer is expected to FAIL when this is
    /// on — it proves the battery catches broken invalidation.
    pub chaos_invalidation: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 25,
            seed: crate::seed::DEFAULT_SEED,
            shrink: true,
            threaded_every: 10,
            chaos: false,
            use_small: true,
            delta: false,
            chaos_invalidation: false,
        }
    }
}

/// The first failing scenario found.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration index (replay with the same base seed).
    pub iteration: u64,
    /// Base seed of the run.
    pub seed: u64,
    /// What disagreed.
    pub detail: String,
    /// The failing scenario, shrunk when shrinking was enabled.
    pub scenario: Scenario,
    /// Shrink statistics, when shrinking ran.
    pub shrink_stats: Option<ShrinkStats>,
}

/// Aggregate fuzz outcome.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters_run: u64,
    /// Answers compared exactly against the oracle.
    pub compared: u64,
    /// Answers skipped (solver out of budget).
    pub skipped_oob: u64,
    /// Answers skipped (oracle step cap).
    pub skipped_cap: u64,
    /// Σ demand points-to sizes over soundness-checked answers.
    pub demand_pts: u64,
    /// Σ Andersen points-to sizes over the same answers.
    pub inclusion_pts: u64,
    /// The first failure, if any.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// True when no iteration failed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Demand/inclusion precision ratio over everything checked.
    pub fn precision_ratio(&self) -> f64 {
        if self.inclusion_pts == 0 {
            1.0
        } else {
            self.demand_pts as f64 / self.inclusion_pts as f64
        }
    }
}

/// Oracle step cap for fuzzing and shrinking. Far above what any
/// completed query on a fuzz-sized graph needs, far below the library
/// default: the shrinker evaluates the failure predicate hundreds of
/// times, and a candidate mutation that sends the naive oracle into a
/// huge exact fixpoint must be rejected in bounded time (as a `StepCap`
/// skip), not ground through.
const FUZZ_STEP_CAP: u64 = 2_000_000;

/// Whether `scenario` exhibits a failure (differential mismatch or
/// soundness violation). Threaded scenarios are run three times — real
/// interleavings vary — and fail if any run disagrees.
pub fn scenario_fails(scenario: &Scenario) -> bool {
    failure_detail(scenario).is_some()
}

/// Like [`scenario_fails`], with a description of the first disagreement.
///
/// Delta scenarios answer on the *edited* graph, so the oracle and the
/// Andersen soundness check run against [`Scenario::final_pag`] — that
/// is exactly what catches invalidation bugs: a stale warm entry served
/// after an edit is a differential mismatch against the edited graph's
/// truth.
pub fn failure_detail(scenario: &Scenario) -> Option<String> {
    let attempts = match scenario.backend {
        Backend::Threaded => 3,
        Backend::Simulated => 1,
    };
    let oracle_cfg = OracleConfig {
        context_sensitive: scenario.solver.context_sensitive,
        step_cap: FUZZ_STEP_CAP,
        ..OracleConfig::default()
    };
    let final_pag;
    let truth = if scenario.deltas.is_empty() {
        &scenario.pag
    } else {
        final_pag = scenario.final_pag();
        &final_pag
    };
    let mut oracle = OracleCache::new(truth, oracle_cfg);
    for _ in 0..attempts {
        let result = scenario.run();
        let diff = diff_answers(&result.answers, &mut oracle);
        if let Some(m) = diff.mismatches.first() {
            return Some(format!("query {}: {}", m.query, m.detail));
        }
        let sound = check_soundness(truth, &result.answers);
        if let Some(&(q, o)) = sound.violations.first() {
            return Some(format!(
                "soundness violation: demand pts({q}) contains {o}, Andersen's does not"
            ));
        }
    }
    matrix_worker_divergence(scenario).or_else(|| incremental_divergence(scenario))
}

/// The incremental dimension: replays a delta scenario's edited graph
/// cold (fresh session, no warm state) and reports the first completed
/// answer that differs from the warm incremental run. Only
/// Complete-vs-Complete pairs are compared — warm stores legitimately
/// move budget verdicts (fewer steps to the same fixpoint). `None` for
/// scenarios without an edit script.
pub fn incremental_divergence(scenario: &Scenario) -> Option<String> {
    if scenario.deltas.is_empty() {
        return None;
    }
    let (warm, _, _) = scenario.run_incremental();
    let mut cold = scenario.clone();
    cold.pag = scenario.final_pag();
    cold.deltas.clear();
    let cold = cold.run();
    for ((qw, aw), (qc, ac)) in warm.sorted_answers().iter().zip(cold.sorted_answers()) {
        debug_assert_eq!(*qw, qc);
        if let (Some(w), Some(c)) = (aw.complete(), ac.complete()) {
            if w != c {
                return Some(format!(
                    "incremental answer for query {qw} diverges from a cold run on the edited graph \
                     (warm {} targets, cold {})",
                    w.len(),
                    c.len()
                ));
            }
        }
    }
    None
}

/// The parallel-matrix dimension: replays a matrix scenario over the
/// grid {1, 2, 4, 8} sweep workers × {packed, unpacked} adjacency and
/// reports the first observable that differs from the scenario's own
/// configuration — answers, total traversed steps, or out-of-budget
/// verdicts must all be independent of both the partition and the scan
/// representation (DESIGN.md §11). `None` for demand scenarios.
pub fn matrix_worker_divergence(scenario: &Scenario) -> Option<String> {
    if scenario.engine != Engine::Matrix {
        return None;
    }
    let base = scenario.run();
    for workers in [1usize, 2, 4, 8] {
        for packed in [scenario.solver.packed, !scenario.solver.packed] {
            let mut v = scenario.clone();
            v.threads = workers;
            v.solver.packed = packed;
            let r = v.run();
            if r.sorted_answers() != base.sorted_answers() {
                return Some(format!(
                    "matrix answers diverge at {workers} workers, packed={packed} \
                     (base {} workers, packed={})",
                    scenario.threads, scenario.solver.packed
                ));
            }
            if r.stats.traversed_steps != base.stats.traversed_steps {
                return Some(format!(
                    "matrix traversed_steps {} at {workers} workers (packed={packed}) \
                     != {} at {} workers (packed={})",
                    r.stats.traversed_steps,
                    base.stats.traversed_steps,
                    scenario.threads,
                    scenario.solver.packed
                ));
            }
            if r.stats.out_of_budget != base.stats.out_of_budget {
                return Some(format!(
                    "matrix out_of_budget {} at {workers} workers (packed={packed}) \
                     != {} at {} workers (packed={})",
                    r.stats.out_of_budget,
                    base.stats.out_of_budget,
                    scenario.threads,
                    scenario.solver.packed
                ));
            }
        }
    }
    None
}

/// Runs the fuzzer. Deterministic for a given configuration (modulo
/// threaded-backend interleavings, which only widen what is caught).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.iters {
        report.iters_run = i + 1;
        let scenario = sample_scenario(cfg, i);
        let oracle_cfg = OracleConfig {
            context_sensitive: scenario.solver.context_sensitive,
            step_cap: FUZZ_STEP_CAP,
            ..OracleConfig::default()
        };
        // Delta scenarios answer on the edited graph: the oracle and the
        // soundness check must be consulted against it.
        let final_pag;
        let truth = if scenario.deltas.is_empty() {
            &scenario.pag
        } else {
            final_pag = scenario.final_pag();
            &final_pag
        };
        let mut oracle = OracleCache::new(truth, oracle_cfg);
        let result = scenario.run();
        let diff = diff_answers(&result.answers, &mut oracle);
        report.compared += diff.compared as u64;
        report.skipped_oob += diff.skipped_oob as u64;
        report.skipped_cap += diff.skipped_cap as u64;
        let sound = check_soundness(truth, &result.answers);
        report.demand_pts += sound.demand_pts as u64;
        report.inclusion_pts += sound.inclusion_pts as u64;

        let detail = if let Some(m) = diff.mismatches.first() {
            Some(format!("query {}: {}", m.query, m.detail))
        } else if let Some(&(q, o)) = sound.violations.first() {
            Some(format!(
                "soundness violation: demand pts({q}) contains {o}, Andersen's does not"
            ))
        } else {
            matrix_worker_divergence(&scenario).or_else(|| incremental_divergence(&scenario))
        };
        if let Some(detail) = detail {
            let (scenario, shrink_stats) = if cfg.shrink {
                let (s, st) = shrink(scenario, &scenario_fails);
                (s, Some(st))
            } else {
                (scenario, None)
            };
            report.failure = Some(FuzzFailure {
                iteration: i,
                seed: cfg.seed,
                detail,
                scenario,
                shrink_stats,
            });
            return report;
        }
    }
    report
}

/// Samples iteration `i`'s scenario from the derived stream.
fn sample_scenario(cfg: &FuzzConfig, i: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(derive(cfg.seed, i));
    // Both fault-injection self-tests want the same scenario shape:
    // micro graphs (shrinkable), sharing modes (stale entries get
    // re-served), ample budgets and zero τ (everything publishes).
    let chaoslike = cfg.chaos || cfg.chaos_invalidation;
    let profile_seed = rng.random_range(0u64..1 << 32);
    let profile = if chaoslike {
        // Chaos runs exist to be shrunk: start from the smallest graphs
        // that still exercise calls, containers and field access, so
        // greedy delta-debugging lands near the true minimal core
        // instead of a large local minimum.
        Profile {
            name: "chaos-micro".into(),
            seed: profile_seed,
            value_classes: 1,
            box_classes: 1,
            collections: 1,
            app_classes: 1,
            methods_per_class: 2,
            idioms_per_method: 2,
            idiom_weights: [1, 2, 2, 2, 1, 2, 3, 2, 0],
            subclass_percent: 0,
            budget: 75_000,
        }
    } else if cfg.use_small && rng.random_bool(0.3) {
        Profile::small(profile_seed)
    } else {
        Profile::tiny(profile_seed)
    };
    let bench = build_bench(&profile);

    // Bound per-iteration oracle cost: up to 16 queries, sampled without
    // replacement, original order preserved.
    let queries = sample_queries(&bench.queries, 16, &mut rng);

    let mode = if chaoslike {
        // The context-blind jmp key only corrupts answers when entries are
        // shared, so bias to the sharing modes. Skipped invalidation
        // likewise only surfaces when stale entries are re-served.
        [Mode::DataSharing, Mode::DataSharingSched][rng.random_range(0usize..2)]
    } else {
        [Mode::Naive, Mode::DataSharing, Mode::DataSharingSched][rng.random_range(0usize..3)]
    };
    let backend =
        if !chaoslike && cfg.threaded_every > 0 && (i + 1).is_multiple_of(cfg.threaded_every) {
            Backend::Threaded
        } else {
            Backend::Simulated
        };

    // Budget regime: ample (every query completes — maximal differential
    // coverage) or tight (exercises OutOfBudget, unfinished jmps, early
    // termination; completed answers must still be exact).
    let ample = chaoslike || rng.random_bool(0.6);
    let budget = if ample {
        5_000_000
    } else {
        50 + rng.random_range(0u64..5_000)
    };
    // τ = 0 publishes every jmp entry (maximal sharing traffic); the
    // chaos self-test needs that to poison reliably.
    let zero_tau = chaoslike || rng.random_bool(0.5);
    let (tau_finished, tau_unfinished) = if zero_tau { (0, 0) } else { (100, 100) };
    let solver = SolverConfig {
        budget,
        tau_finished,
        tau_unfinished,
        context_sensitive: cfg.chaos || rng.random_bool(0.85),
        memoize: rng.random_bool(0.25),
        chaos_jmp_ignore_ctx: cfg.chaos,
        chaos_skip_invalidation: cfg.chaos_invalidation,
        // Backend dimension: hash and dense must be indistinguishable in
        // every differential and soundness check.
        state: if rng.random_bool(0.5) {
            StateBackend::Hash
        } else {
            StateBackend::Dense
        },
        // Packed dimension: matrix scenarios must be indistinguishable
        // whether they scan bit-packed adjacency rows or the scalar CSR
        // slices (the demand solver ignores the flag either way).
        packed: rng.random_bool(0.5),
        ..SolverConfig::default()
    };

    // Engine dimension: a quarter of non-chaos iterations answer on the
    // whole-program matrix backend instead of the demand solver — its
    // completed answers must match the oracle exactly, just like demand's.
    // Chaos runs stay on demand: the matrix engine never touches the jmp
    // store, so the injected sharing fault could not surface there.
    let engine = if !chaoslike && rng.random_bool(0.25) {
        Engine::Matrix
    } else {
        Engine::Demand
    };

    // Mutate-then-requery dimension: a quarter of eligible iterations
    // (simulated backend, ample budget — the oracle must see completed
    // answers on the edited graph) carry a 1–3 op edit script; `--delta`
    // forces it, the invalidation self-test requires it. Ops may cancel
    // to no-ops on purpose (the zero-invalidation path is a dimension
    // too).
    let deltas = if cfg.chaos_invalidation
        || (!cfg.chaos
            && backend == Backend::Simulated
            && ample
            && (cfg.delta || rng.random_bool(0.25)))
    {
        sample_edits(
            &bench.pag,
            rng.random_range(0u64..1 << 32),
            rng.random_range(1usize..=3),
        )
    } else {
        Vec::new()
    };

    let (mut perturb, store_cap) = if backend == Backend::Simulated {
        let perturb = if rng.random_bool(0.8) {
            Some(SimPerturb {
                seed: rng.random_range(0u64..1 << 32),
                fetch_jitter: rng.random_range(0u64..=4),
                pick_window: rng.random_range(1usize..=4),
                scramble_ties: rng.random_bool(0.5),
                evict_period: if rng.random_bool(0.3) {
                    rng.random_range(2u64..=12)
                } else {
                    0
                },
            })
        } else {
            None
        };
        let store_cap = if rng.random_bool(0.25) {
            Some(rng.random_range(4usize..=64))
        } else {
            None
        };
        (perturb, store_cap)
    } else {
        (None, None)
    };
    if !deltas.is_empty() {
        // The session replay path has no simulator perturbation hook.
        perturb = None;
    }

    // Matrix scenarios draw from the power-of-two worker ladder the
    // cross-worker replay sweeps; demand threads stay 1..=6.
    let threads = if engine == Engine::Matrix {
        [1usize, 2, 4, 8][rng.random_range(0usize..4)]
    } else {
        rng.random_range(1usize..=6)
    };

    // Trace dimension: tracing is observation-only by contract, so any
    // level must leave every oracle comparison untouched. Half the
    // iterations run with a recorder attached to hold that line.
    let trace_level = [
        TraceLevel::Off,
        TraceLevel::Off,
        TraceLevel::Spans,
        TraceLevel::Full,
    ][rng.random_range(0usize..4)];

    Scenario {
        pag: bench.pag,
        queries,
        mode,
        backend,
        threads,
        solver,
        fetch_cost: rng.random_range(0u64..=3),
        perturb,
        store_cap,
        engine,
        trace_level,
        deltas,
    }
}

fn sample_queries(
    all: &[parcfl_pag::NodeId],
    max: usize,
    rng: &mut StdRng,
) -> Vec<parcfl_pag::NodeId> {
    if all.len() <= max {
        return all.to_vec();
    }
    // Partial Fisher–Yates over indices, then restore original order.
    let mut idx: Vec<usize> = (0..all.len()).collect();
    for k in 0..max {
        let j = k + rng.random_range(0usize..idx.len() - k);
        idx.swap(k, j);
    }
    let mut picked: Vec<usize> = idx[..max].to_vec();
    picked.sort_unstable();
    picked.into_iter().map(|k| all[k]).collect()
}

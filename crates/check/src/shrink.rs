//! Counterexample shrinking: delta-debugging a failing [`Scenario`] down
//! to a minimal graph and query set.
//!
//! The algorithm is greedy 1-minimal reduction, re-checking the failure
//! predicate after every candidate removal:
//!
//! 1. **Canonicalise** the graph (scrub names/types/methods) so the
//!    minimised scenario serialises losslessly — adopted only if the
//!    failure survives canonicalisation (it always should: the solver
//!    never looks at names).
//! 2. **Simplify the configuration**: try threads → 1, simulated backend,
//!    zero fetch cost, no perturbation, no store cap, simpler mode. This
//!    is what makes structural shrinking effective: a failure that
//!    depends on a 6-thread perturbed interleaving is fragile (removing
//!    an unrelated edge shifts every virtual clock and masks it), while
//!    the same data-sharing bug reproduced on one FIFO worker survives
//!    edge removal robustly.
//! 3. **Drop queries**, in reverse order, keeping each removal that still
//!    fails. A smaller query set makes every later edge-removal check
//!    cheaper. **Drop delta ops** the same way: a mutate-then-requery
//!    failure usually hinges on one edit — the rest of the script (and
//!    sometimes all of it, when the cold run already fails) goes.
//! 4. **Drop edges**, repeated sweeps until a fixpoint: for each edge (in
//!    reverse), rebuild the graph without it and keep the removal if the
//!    failure persists. Node ids are stable under
//!    [`rebuild_with_edges`](parcfl_synth::mutate::rebuild_with_edges), so
//!    queries stay valid throughout.
//! 5. **Weaken edge labels**: rewrite `param`/`ret`/`ld`/`st`/`assign_g`
//!    labels the failure doesn't depend on to plain `assign_l`. Labelled
//!    hops can't compose with each other, so without this step a chain
//!    like `u →param_6→ v →ld(1)→ w` is contraction-proof even when the
//!    labels are incidental.
//! 6. **Contract chains**: bypass a non-query node by composing each
//!    incoming/outgoing edge pair through a plain `assign_l` hop (`u
//!    →ld(f)→ v →assign_l→ w` becomes `u →ld(f)→ w`, etc.). Pure edge
//!    deletion cannot shorten a value-flow chain in which every hop is
//!    load-bearing; contraction can, and 1-minimality is restored by
//!    rerunning the edge sweep afterwards.
//! 7. **Merge node pairs** on the now-small graph: redirect every edge
//!    at one node onto another; duplicate edges and self-loops collapse.
//!    Catches "two parallel copies of the same role" residue that
//!    neither deletion nor contraction can reduce.
//! 8. **Compact** away orphan nodes (remapping queries), adopted only if
//!    the failure survives the id remap.
//!
//! Phases 2–6 repeat (bounded) until a full cycle adopts nothing, since
//! a smaller graph can unlock further config simplification and vice
//! versa.
//!
//! The predicate is re-evaluated from scratch on every candidate, so
//! shrinking works for any deterministic failure — differential
//! mismatches, soundness violations, panics caught by the caller's
//! predicate — and degrades gracefully (keeps the larger scenario) on
//! flaky ones.

use crate::snapshot::Scenario;
use parcfl_pag::{DeltaOp, Edge, EdgeKind, NodeId, Pag};
use parcfl_runtime::{Backend, Mode};
use parcfl_synth::mutate::{canonicalize, compact, rebuild_with_edges};

/// Statistics from one shrink run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Failure-predicate evaluations performed.
    pub checks: usize,
    /// Edges in the original / shrunk scenario.
    pub edges: (usize, usize),
    /// Queries in the original / shrunk scenario.
    pub queries: (usize, usize),
    /// Delta ops in the original / shrunk scenario.
    pub deltas: (usize, usize),
}

/// Shrinks `scenario` while `fails` keeps returning `true` for the
/// candidate. `scenario` itself must fail (debug-asserted); the result is
/// 1-minimal: removing any single remaining edge or query makes the
/// failure disappear (or flake).
pub fn shrink(scenario: Scenario, fails: &dyn Fn(&Scenario) -> bool) -> (Scenario, ShrinkStats) {
    let mut stats = ShrinkStats {
        edges: (scenario.pag.edge_count(), scenario.pag.edge_count()),
        queries: (scenario.queries.len(), scenario.queries.len()),
        deltas: (scenario.deltas.len(), scenario.deltas.len()),
        ..ShrinkStats::default()
    };
    debug_assert!(fails(&scenario), "shrink called on a passing scenario");
    let mut cur = scenario;

    // 1. Canonicalise.
    let mut candidate = cur.clone();
    candidate.pag = canonicalize(&cur.pag);
    stats.checks += 1;
    if fails(&candidate) {
        cur = candidate;
    }

    // 2–6. Config / query / edge reduction, cycled to a joint fixpoint.
    for _cycle in 0..6 {
        let mut adopted = false;

        // 2. Configuration simplification.
        type Step = fn(&mut Scenario);
        let steps: [Step; 13] = [
            |s| s.backend = Backend::Simulated,
            |s| s.threads = 1,
            |s| s.fetch_cost = 0,
            |s| s.perturb = None,
            |s| s.store_cap = None,
            |s| s.solver.budget = s.solver.budget.min(200_000),
            |s| {
                s.mode = match s.mode {
                    Mode::DataSharingSched => Mode::DataSharing,
                    _ => Mode::Naive,
                }
            },
            |s| s.engine = parcfl_runtime::Engine::Demand,
            |s| s.solver.state = parcfl_core::StateBackend::default(),
            |s| s.solver.packed = true,
            |s| s.trace_level = parcfl_runtime::TraceLevel::Off,
            |s| s.deltas.clear(),
            |s| s.solver.chaos_skip_invalidation = false,
        ];
        for step in steps {
            let mut candidate = cur.clone();
            step(&mut candidate);
            if candidate.backend == cur.backend
                && candidate.threads == cur.threads
                && candidate.fetch_cost == cur.fetch_cost
                && candidate.perturb == cur.perturb
                && candidate.store_cap == cur.store_cap
                && candidate.solver.budget == cur.solver.budget
                && candidate.mode == cur.mode
                && candidate.engine == cur.engine
                && candidate.solver.state == cur.solver.state
                && candidate.solver.packed == cur.solver.packed
                && candidate.trace_level == cur.trace_level
                && candidate.deltas == cur.deltas
                && candidate.solver.chaos_skip_invalidation == cur.solver.chaos_skip_invalidation
            {
                continue; // no-op for this scenario
            }
            stats.checks += 1;
            if fails(&candidate) {
                cur = candidate;
                adopted = true;
            }
        }

        // 3. Queries, reverse order.
        let mut i = cur.queries.len();
        while i > 0 {
            i -= 1;
            if cur.queries.len() == 1 {
                break;
            }
            let mut candidate = cur.clone();
            candidate.queries.remove(i);
            stats.checks += 1;
            if fails(&candidate) {
                cur = candidate;
                adopted = true;
            }
        }

        // 3b. Delta ops, reverse order (may go to zero — unlike queries,
        // an empty edit script is a valid, simpler scenario).
        let mut i = cur.deltas.len();
        while i > 0 {
            i -= 1;
            let mut candidate = cur.clone();
            candidate.deltas.remove(i);
            stats.checks += 1;
            if fails(&candidate) {
                cur = candidate;
                adopted = true;
            }
        }

        // 4. Edges, sweeps to fixpoint.
        loop {
            let mut changed = false;
            let mut j = cur.pag.edge_count();
            while j > 0 {
                j -= 1;
                let mut edges = cur.pag.edges().to_vec();
                edges.remove(j);
                let mut candidate = cur.clone();
                candidate.pag = rebuild_with_edges(&cur.pag, &edges);
                stats.checks += 1;
                if fails(&candidate) {
                    cur = candidate;
                    changed = true;
                    adopted = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 5. Weaken incidental labels to `assign_l`.
        let mut j = cur.pag.edge_count();
        while j > 0 {
            j -= 1;
            let mut edges = cur.pag.edges().to_vec();
            if edges[j].kind == EdgeKind::AssignLocal {
                continue;
            }
            edges[j].kind = EdgeKind::AssignLocal;
            let mut candidate = cur.clone();
            candidate.pag = rebuild_with_edges(&cur.pag, &edges);
            stats.checks += 1;
            if fails(&candidate) {
                cur = candidate;
                adopted = true;
            }
        }

        // 6. Chain contraction; the next cycle's edge sweep restores
        // 1-minimality over the composed edges.
        loop {
            let mut changed = false;
            for v in cur.pag.node_ids() {
                if cur.queries.contains(&v) {
                    continue;
                }
                let Some(edges) = bypass_node(&cur.pag, v) else {
                    continue;
                };
                let mut candidate = cur.clone();
                candidate.pag = rebuild_with_edges(&cur.pag, &edges);
                stats.checks += 1;
                if fails(&candidate) {
                    cur = candidate;
                    changed = true;
                    adopted = true;
                }
            }
            if !changed {
                break;
            }
        }

        if !adopted {
            break;
        }
    }

    // 7. Merge node pairs on the (now small) graph: redirect every edge
    // at `a` onto `b`; duplicates and self-loops collapse, so an adopted
    // merge strictly shrinks the edge set. Quadratic in nodes, so gated
    // on the graph already being small.
    if cur.pag.node_count() <= 32 {
        loop {
            let mut changed = false;
            'pairs: for a in cur.pag.node_ids() {
                if cur.queries.contains(&a) {
                    continue;
                }
                for b in cur.pag.node_ids() {
                    if a == b {
                        continue;
                    }
                    let Some(edges) = merge_nodes(&cur.pag, a, b) else {
                        continue;
                    };
                    let mut candidate = cur.clone();
                    candidate.pag = rebuild_with_edges(&cur.pag, &edges);
                    stats.checks += 1;
                    if fails(&candidate) {
                        cur = candidate;
                        changed = true;
                        continue 'pairs;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // 8. Compact orphans. Delta-op endpoints are pinned alongside the
    // queries so the id remap can be split back: queries first, then one
    // (src, dst) pair per op.
    let mut pinned = cur.queries.clone();
    for op in &cur.deltas {
        let e = op.edge();
        pinned.push(e.src);
        pinned.push(e.dst);
    }
    let (small, remapped) = compact(&cur.pag, &pinned);
    if small.node_count() < cur.pag.node_count() {
        let qlen = cur.queries.len();
        let mut candidate = cur.clone();
        candidate.pag = small;
        candidate.queries = remapped[..qlen].to_vec();
        for (k, op) in candidate.deltas.iter_mut().enumerate() {
            let e = op.edge();
            let moved = Edge {
                src: remapped[qlen + 2 * k],
                dst: remapped[qlen + 2 * k + 1],
                kind: e.kind,
            };
            *op = match op {
                DeltaOp::AddEdge(_) => DeltaOp::AddEdge(moved),
                DeltaOp::RemoveEdge(_) => DeltaOp::RemoveEdge(moved),
            };
        }
        stats.checks += 1;
        if fails(&candidate) {
            cur = candidate;
        }
    }

    stats.edges.1 = cur.pag.edge_count();
    stats.queries.1 = cur.queries.len();
    stats.deltas.1 = cur.deltas.len();
    (cur, stats)
}

/// An `assign_l` hop carries any other label through unchanged; no other
/// pair of labels composes into a single edge.
fn compose(k1: EdgeKind, k2: EdgeKind) -> Option<EdgeKind> {
    match (k1, k2) {
        (EdgeKind::AssignLocal, k) | (k, EdgeKind::AssignLocal) => Some(k),
        _ => None,
    }
}

/// The edge set with node `a` merged into `b`: every edge endpoint at
/// `a` is redirected to `b`, then duplicates and self-loops are dropped.
/// Returns `None` unless the result is strictly smaller (guaranteeing
/// the merge sweep terminates).
fn merge_nodes(pag: &Pag, a: NodeId, b: NodeId) -> Option<Vec<Edge>> {
    let redirect = |n: NodeId| if n == a { b } else { n };
    let mut edges: Vec<Edge> = Vec::with_capacity(pag.edge_count());
    for e in pag.edges() {
        let e2 = Edge {
            src: redirect(e.src),
            dst: redirect(e.dst),
            kind: e.kind,
        };
        if e2.src == e2.dst {
            continue;
        }
        if !edges.contains(&e2) {
            edges.push(e2);
        }
    }
    (edges.len() < pag.edge_count()).then_some(edges)
}

/// The edge set with node `v` bypassed: each incoming × outgoing pair
/// replaced by its [`compose`]d edge. Only attempted when the result is
/// strictly smaller (one side has a single edge), every pair composes,
/// and `v` has no self-loop — otherwise returns `None` and the node is
/// left for the plain edge sweep.
fn bypass_node(pag: &Pag, v: NodeId) -> Option<Vec<Edge>> {
    if pag.incoming(v).iter().any(|e| e.src == v) {
        return None;
    }
    let inc = pag.incoming(v);
    let out: Vec<Edge> = pag.outgoing(v).to_vec();
    if inc.is_empty() || out.is_empty() || inc.len().min(out.len()) != 1 {
        return None;
    }
    let mut composed = Vec::with_capacity(inc.len() * out.len());
    for a in inc {
        for b in &out {
            composed.push(Edge {
                src: a.src,
                dst: b.dst,
                kind: compose(a.kind, b.kind)?,
            });
        }
    }
    let mut edges: Vec<Edge> = pag
        .edges()
        .iter()
        .copied()
        .filter(|e| e.src != v && e.dst != v)
        .collect();
    edges.extend(composed);
    Some(edges)
}

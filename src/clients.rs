//! Client-facing helpers built on the demand-driven analysis — the kinds
//! of consumers the paper's introduction motivates (alias disambiguation,
//! debugging, escape reasoning).

use parcfl_core::{Answer, JmpStore, Solver};
use parcfl_pag::{NodeId, NodeKind, Pag};

/// Three-valued verdict of a demand query: budget exhaustion means the
/// client must assume the conservative answer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Definitely within the computed relation.
    Yes,
    /// Definitely not (the analysis completed and the relation is absent).
    No,
    /// A query ran out of budget; assume the worst.
    Unknown,
}

impl Verdict {
    /// Conservative boolean: `Unknown` counts as `true`.
    pub fn must_assume(self) -> bool {
        !matches!(self, Verdict::No)
    }
}

/// A demand-driven analysis client bundling the common question shapes.
pub struct Client<'a> {
    solver: Solver<'a>,
    pag: &'a Pag,
}

impl<'a> Client<'a> {
    /// Wraps a configured solver.
    pub fn new(pag: &'a Pag, solver: Solver<'a>) -> Self {
        Client { solver, pag }
    }

    /// The objects `v` may point to, by node id (None = out of budget).
    pub fn points_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.solver.points_to_query(v, 0).answer.nodes()
    }

    /// May `a` and `b` refer to the same object?
    pub fn may_alias(&self, a: NodeId, b: NodeId) -> Verdict {
        let (Some(pa), Some(pb)) = (self.points_to(a), self.points_to(b)) else {
            return Verdict::Unknown;
        };
        if pa.iter().any(|o| pb.contains(o)) {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }

    /// May the object allocated at `obj` flow into any global (static
    /// field)? A cheap escape-style question answered with one `FlowsTo`
    /// query.
    pub fn may_escape_to_global(&self, obj: NodeId) -> Verdict {
        debug_assert!(self.pag.kind(obj).is_object());
        match self.solver.flows_to_query(obj, 0).answer {
            Answer::OutOfBudget => Verdict::Unknown,
            Answer::Complete(vars) => {
                // The flowsTo set contains variables; an object escapes if
                // it reaches a global, or a local that a global assignment
                // reads (covered transitively by the traversal itself).
                if vars
                    .iter()
                    .any(|(v, _)| matches!(self.pag.kind(*v), NodeKind::Global))
                {
                    Verdict::Yes
                } else {
                    Verdict::No
                }
            }
        }
    }

    /// Can `v` be a dangling/never-assigned reference (empty points-to
    /// set)? Useful for "definitely-null" style diagnostics.
    pub fn definitely_unassigned(&self, v: NodeId) -> Verdict {
        match self.points_to(v) {
            None => Verdict::Unknown,
            Some(objs) if objs.is_empty() => Verdict::Yes,
            Some(_) => Verdict::No,
        }
    }
}

/// Convenience constructor over a jmp store.
pub fn client<'a>(
    pag: &'a Pag,
    cfg: &'a parcfl_core::SolverConfig,
    store: &'a dyn JmpStore,
) -> Client<'a> {
    Client::new(pag, Solver::new(pag, cfg, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcfl_core::{NoJmpStore, SolverConfig};

    const SRC: &str = "
        lib class Obj { }
        class A {
            static field g: Obj;
            method m() {
                var kept: Obj; var copy: Obj; var other: Obj;
                var leaked: Obj; var never: Obj;
                kept = new Obj;
                copy = kept;
                other = new Obj;
                leaked = new Obj;
                A.g = leaked;
            }
        }";

    #[test]
    fn verdicts() {
        let pag = parcfl_frontend::build_pag(SRC).unwrap().pag;
        let cfg = SolverConfig::default();
        let store = NoJmpStore;
        let c = client(&pag, &cfg, &store);
        let n = |name: &str| pag.node_by_name(name).unwrap();

        assert_eq!(c.may_alias(n("kept@A.m"), n("copy@A.m")), Verdict::Yes);
        assert_eq!(c.may_alias(n("kept@A.m"), n("other@A.m")), Verdict::No);
        assert!(c.may_alias(n("kept@A.m"), n("copy@A.m")).must_assume());
        assert!(!c.may_alias(n("kept@A.m"), n("other@A.m")).must_assume());

        // o3 = `leaked = new Obj` escapes via A.g; o0 = `kept` does not.
        assert_eq!(c.may_escape_to_global(n("o3@A.m")), Verdict::Yes);
        assert_eq!(c.may_escape_to_global(n("o0@A.m")), Verdict::No);

        assert_eq!(c.definitely_unassigned(n("never@A.m")), Verdict::Yes);
        assert_eq!(c.definitely_unassigned(n("kept@A.m")), Verdict::No);
    }

    #[test]
    fn unknown_on_budget_exhaustion() {
        let pag = parcfl_frontend::build_pag(SRC).unwrap().pag;
        let cfg = SolverConfig::default().with_budget(1);
        let store = NoJmpStore;
        let c = client(&pag, &cfg, &store);
        let copy = pag.node_by_name("copy@A.m").unwrap();
        let kept = pag.node_by_name("kept@A.m").unwrap();
        assert_eq!(c.may_alias(copy, kept), Verdict::Unknown);
        assert!(c.may_alias(copy, kept).must_assume());
        assert_eq!(c.definitely_unassigned(copy), Verdict::Unknown);
    }
}

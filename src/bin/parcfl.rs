//! The `parcfl` command-line tool: analyse `.mj` programs from the shell.
//!
//! ```text
//! parcfl query <file.mj> [--var NAME]... [--budget N] [--insensitive]
//! parcfl alias <file.mj> --var A --var B [--budget N]
//! parcfl stats <file.mj>
//! parcfl dot   <file.mj>
//! parcfl bench <benchmark-name> [--threads N] [--mode naive|d|dq]
//! parcfl bench-diff <baseline.json> <current.json> [--gate MODE] [--report PATH]
//! parcfl check [--fuzz N] [--seed S] [--no-shrink] [--chaos] [--delta]
//!              [--chaos-invalidation] [--out PATH]
//! parcfl check --replay <file.snap>
//! ```

use parcfl::core::{MatrixSolver, NoJmpStore, Solver, SolverConfig};
use parcfl::frontend::build_pag;
use parcfl::pag::Pag;
use parcfl::runtime::{run_seq, run_simulated, Backend, Engine, Mode, RunConfig, TraceLevel};
use std::io::Write;
use std::process::exit;

/// Prints a line to stdout, exiting quietly when the downstream pipe has
/// been closed (e.g. `parcfl query … | head`): EPIPE is a normal way for a
/// consumer to say "enough", not a crash.
fn out(line: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    if writeln!(stdout, "{line}").is_err() {
        exit(0);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    match cmd.as_str() {
        "query" => cmd_query(&args[1..]),
        "alias" => cmd_alias(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "dot" => cmd_dot(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "bench-diff" => cmd_bench_diff(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "why" => cmd_why(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "parcfl — demand-driven CFL-reachability pointer analysis

USAGE:
  parcfl query <file.mj> [--var NAME]... [--budget N] [--insensitive]
               [--state hash|dense] [--engine demand|matrix|auto]
      Print points-to sets (all application locals, or the named variables;
      names match the `local@Class.method` form, or any suffix of it).
      --state picks the visited-state backend (default dense); --engine
      answers on the demand solver (default), the whole-program matrix
      backend, or picks per batch by density. All are bit-identical on
      completed answers (DESIGN.md §11).
  parcfl alias <file.mj> --var A --var B [--budget N]
      May-alias verdict for two variables.
  parcfl stats <file.mj>
      PAG statistics after extraction and cycle collapsing.
  parcfl dot <file.mj>
      Graphviz DOT of the PAG on stdout.
  parcfl bench <name> [--threads N] [--mode naive|d|dq] [--threaded] [--stealing]
               [--state hash|dense] [--engine demand|matrix|auto]
      Run one Table-I benchmark and report the speedup over SeqCFL.
      --threaded uses real OS threads instead of the virtual-time
      simulator; --stealing additionally dispatches through the
      work-stealing scheduler (implies --threaded) and reports per-worker
      contention. --state/--engine select the solver core as in `query`
      (mode/threads are inert under the matrix engine).
  parcfl bench-diff <baseline.json> <current.json> [--gate none|deterministic|all]
               [--report PATH]
      Compare two BENCH_solver.json artifacts (table2 output). Exact
      equality is required of every deterministic per-row counter
      (traversed steps, makespan, peak state words, packed/CSR gather
      counts, ...); wall_ms regressions beyond 30% are warnings. Exit 1
      when the selected gate fails: --gate deterministic (default) fails
      on counter drift, --gate all additionally on wall regressions,
      --gate none never. --report also writes the findings to PATH.
  parcfl trace <file.mj> [--out PATH] [--threads N] [--mode naive|d|dq]
               [--level spans|full] [--threaded] [--engine demand|matrix]
      Answer every application-local query with event tracing on and
      write a Chrome-trace JSON (default trace.json) for chrome://tracing
      or Perfetto. The default virtual-time simulator gives a
      deterministic trace; --threaded records real wall-clock spans.
      --engine matrix traces the whole-program matrix engine instead:
      one lane per sweep worker (--threads) with wave spans,
      sweep-segment instants and pool wake/park markers (mode and
      --threaded are inert there; the lanes are real-clock).
  parcfl gen <name>
      Print a Table-I benchmark's generated mini-Java source on stdout
      (feed it back through `parcfl query`/`stats`/`dot`).
  parcfl why <file.mj> --var NAME [--budget N]
      Explain each object in NAME's points-to set with a witness path.
  parcfl check [--fuzz N] [--seed S] [--no-shrink] [--chaos] [--delta]
               [--chaos-invalidation] [--out PATH]
      Differential fuzzing: N seeded scenarios (default 25) across
      modes/backends/schedules, each checked against the naive oracle and
      the Andersen inclusion solution. A quarter of eligible iterations
      mutate the PAG mid-session and re-query against warm state;
      --delta forces that dimension on for every eligible iteration. On
      failure the counterexample is shrunk (disable with --no-shrink),
      written to PATH (default counterexample.snap) and the exit code is
      1. --seed overrides PARCFL_TEST_SEED; --chaos injects a
      context-blind jmp-store fault and --chaos-invalidation disables
      delta invalidation entirely — both prove the harness catches the
      corresponding real bugs (expected exit 1).
  parcfl check --replay <file.snap>
      Re-run a recorded counterexample snapshot exactly as captured and
      report whether it still disagrees with the oracle."
    );
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn load(args: &[String]) -> (Pag, Vec<parcfl::pag::NodeId>) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a .mj file path");
        exit(2);
    };
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    // The CLI analyses the *uncollapsed* graph: assign-cycle collapsing is
    // a batch-mode optimisation that renames merged variables, which would
    // make `--var` lookups fail for non-representative members. Queries on
    // the original graph are equally precise.
    let e = build_pag(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    });
    let queries = e.pag.application_locals();
    (e.pag, queries)
}

fn solver_config(args: &[String]) -> SolverConfig {
    let mut cfg = SolverConfig::default();
    if let Some(b) = flag_value(args, "--budget") {
        cfg.budget = b.parse().unwrap_or_else(|_| {
            eprintln!("--budget expects an integer");
            exit(2);
        });
    }
    if args.iter().any(|a| a == "--insensitive") {
        cfg.context_sensitive = false;
    }
    if let Some(s) = flag_value(args, "--state") {
        cfg.state = s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
    }
    cfg
}

fn engine_flag(args: &[String]) -> Engine {
    match flag_value(args, "--engine") {
        Some(e) => e.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => Engine::Demand,
    }
}

fn resolve(pag: &Pag, name: &str) -> parcfl::pag::NodeId {
    // Exact match first, then unique suffix match.
    if let Some(n) = pag.node_by_name(name) {
        return n;
    }
    let matches: Vec<_> = pag
        .node_ids()
        .filter(|&n| {
            let full = &pag.node(n).name;
            full.ends_with(name) || full.starts_with(&format!("{name}@"))
        })
        .collect();
    match matches.as_slice() {
        [one] => *one,
        [] => {
            eprintln!("no variable matches `{name}`");
            exit(1);
        }
        many => {
            eprintln!("`{name}` is ambiguous:");
            for &m in many {
                eprintln!("  {}", pag.node(m).name);
            }
            exit(1);
        }
    }
}

fn cmd_query(args: &[String]) {
    let (pag, all) = load(args);
    let cfg = solver_config(args);
    let wanted = flag_values(args, "--var");
    let targets: Vec<_> = if wanted.is_empty() {
        all
    } else {
        wanted.iter().map(|w| resolve(&pag, w)).collect()
    };
    let matrix = match engine_flag(args) {
        Engine::Matrix => true,
        Engine::Demand => false,
        Engine::Auto => parcfl::runtime::matrix_pays_off(&pag, &targets),
    };
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);
    let mut matrix_solver = matrix.then(|| MatrixSolver::new(&pag, &cfg));
    for v in targets {
        let out = match matrix_solver.as_mut() {
            Some(m) => m.points_to_query(v),
            None => solver.points_to_query(v, 0),
        };
        match out.answer.nodes() {
            Some(objs) => {
                let names: Vec<_> = objs.iter().map(|&o| pag.node(o).name.clone()).collect();
                outln!(
                    "{:<32} -> {{{}}} ({} steps)",
                    pag.node(v).name,
                    names.join(", "),
                    out.stats.traversed_steps
                );
            }
            None => outln!("{:<32} -> out of budget", pag.node(v).name),
        }
    }
}

fn cmd_alias(args: &[String]) {
    let (pag, _) = load(args);
    let cfg = solver_config(args);
    let vars = flag_values(args, "--var");
    if vars.len() != 2 {
        eprintln!("alias requires exactly two --var arguments");
        exit(2);
    }
    let store = NoJmpStore;
    let c = parcfl::clients::client(&pag, &cfg, &store);
    let a = resolve(&pag, &vars[0]);
    let b = resolve(&pag, &vars[1]);
    outln!(
        "{} ~ {} : {:?}",
        pag.node(a).name,
        pag.node(b).name,
        c.may_alias(a, b)
    );
}

fn cmd_stats(args: &[String]) {
    let (pag, queries) = load(args);
    outln!("{}", parcfl::pag::stats::PagStats::of(&pag));
    outln!("application-code query candidates: {}", queries.len());
}

fn cmd_dot(args: &[String]) {
    let (pag, _) = load(args);
    let _ = std::io::stdout()
        .lock()
        .write_all(parcfl::pag::dot::to_dot(&pag).as_bytes());
}

fn cmd_trace(args: &[String]) {
    let (pag, queries) = load(args);
    let out_path = flag_value(args, "--out").unwrap_or_else(|| "trace.json".to_string());
    let threads: usize = flag_value(args, "--threads")
        .map(|t| t.parse().expect("--threads expects an integer"))
        .unwrap_or(4);
    let mode = match flag_value(args, "--mode").as_deref() {
        None | Some("dq") => Mode::DataSharingSched,
        Some("d") => Mode::DataSharing,
        Some("naive") => Mode::Naive,
        Some(other) => {
            eprintln!("unknown mode `{other}` (naive|d|dq)");
            exit(2);
        }
    };
    let level = match flag_value(args, "--level").as_deref() {
        None | Some("full") => TraceLevel::Full,
        Some("spans") => TraceLevel::Spans,
        Some(other) => {
            eprintln!("unknown trace level `{other}` (spans|full)");
            exit(2);
        }
    };
    let threaded = args.iter().any(|a| a == "--threaded");
    let backend = if threaded {
        Backend::Threaded
    } else {
        Backend::Simulated
    };
    let engine = engine_flag(args);
    let mut cfg = RunConfig::new(mode, threads, backend).with_tracing(level);
    cfg.solver = solver_config(args);
    let r = match engine {
        Engine::Matrix => {
            // Whole-program matrix engine: per-sweep-worker lanes with
            // wave spans and pool wake/park instants, stamped on the
            // real clock (mode/backend are inert under this engine).
            cfg.solver.state = parcfl::core::StateBackend::Dense;
            parcfl::runtime::run_matrix(&pag, &queries, &cfg)
        }
        _ if threaded => parcfl::runtime::run_threaded(&pag, &queries, &cfg),
        _ => run_simulated(&pag, &queries, &cfg),
    };
    let trace = r.trace.expect("tracing enabled yields a trace");
    std::fs::write(&out_path, trace.to_chrome_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        exit(1);
    });
    outln!(
        "{}: {} queries, {} completed; {} events across {} workers ({} dropped) -> {}",
        match engine {
            Engine::Matrix => "matrix",
            _ if threaded => "threaded",
            _ => "simulated",
        },
        r.stats.queries,
        r.stats.completed,
        trace.event_count(),
        trace.workers.len(),
        trace.dropped(),
        out_path
    );
}

fn cmd_bench_diff(args: &[String]) {
    use parcfl::bench::diff::{diff_files, GateMode};

    let paths: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [baseline, current] = paths.as_slice() else {
        eprintln!("bench-diff requires a baseline and a current artifact path");
        exit(2);
    };
    let gate: GateMode = match flag_value(args, "--gate") {
        Some(g) => g.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => GateMode::Deterministic,
    };
    let report = diff_files(baseline, current).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    let rendered = report.render();
    if let Some(path) = flag_value(args, "--report") {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    outln!("{}", rendered.trim_end());
    if report.failed(gate) {
        exit(1);
    }
}

fn cmd_gen(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("expected a benchmark name");
        exit(2);
    };
    let Some(profile) = parcfl::synth::table1_profiles()
        .into_iter()
        .find(|p| &p.name == name)
    else {
        eprintln!("unknown benchmark `{name}`");
        exit(1);
    };
    let program = parcfl::synth::generate(&profile);
    let _ = std::io::stdout()
        .lock()
        .write_all(parcfl::frontend::pretty::pretty(&program).as_bytes());
}

fn cmd_why(args: &[String]) {
    let (pag, _) = load(args);
    let cfg = solver_config(args);
    let vars = flag_values(args, "--var");
    let [name] = vars.as_slice() else {
        eprintln!("why requires exactly one --var argument");
        exit(2);
    };
    let v = resolve(&pag, name);
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);
    let (out, trace) = solver.traced_points_to_query(v, 0);
    match out.answer.complete() {
        None => outln!("{}: out of budget", pag.node(v).name),
        Some([]) => {
            outln!("{}: points to nothing", pag.node(v).name)
        }
        Some(objs) => {
            for (o, c) in objs {
                outln!(
                    "--- {} may point to {} ---",
                    pag.node(v).name,
                    pag.node(*o).name
                );
                match trace.witness(*o, c) {
                    Some(w) => outln!("{}", w.render(&pag)),
                    None => outln!("(no witness recorded)"),
                }
            }
        }
    }
}

fn cmd_bench(args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("expected a benchmark name; one of:");
        for p in parcfl::synth::table1_profiles() {
            eprintln!("  {}", p.name);
        }
        exit(2);
    };
    let Some(profile) = parcfl::synth::table1_profiles()
        .into_iter()
        .find(|p| &p.name == name)
    else {
        eprintln!("unknown benchmark `{name}`");
        exit(1);
    };
    let threads: usize = flag_value(args, "--threads")
        .map(|t| t.parse().expect("--threads expects an integer"))
        .unwrap_or(16);
    let mode = match flag_value(args, "--mode").as_deref() {
        None | Some("dq") => Mode::DataSharingSched,
        Some("d") => Mode::DataSharing,
        Some("naive") => Mode::Naive,
        Some(other) => {
            eprintln!("unknown mode `{other}` (naive|d|dq)");
            exit(2);
        }
    };
    let stealing = args.iter().any(|a| a == "--stealing");
    let threaded = stealing || args.iter().any(|a| a == "--threaded");
    let engine = engine_flag(args);
    let b = parcfl::synth::build_bench(&profile);
    let mut seq_solver = b.solver.clone();
    if let Some(s) = flag_value(args, "--state") {
        seq_solver.state = s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
    }
    let seq = run_seq(&b.pag, &b.queries, &seq_solver);
    let backend = if threaded {
        Backend::Threaded
    } else {
        Backend::Simulated
    };
    let mut cfg = RunConfig::new(mode, threads, backend)
        .with_stealing(stealing)
        .with_engine(engine);
    cfg.solver = seq_solver;
    let par = parcfl::runtime::run(&b.pag, &b.queries, &cfg);
    // Report the engine that actually ran (`Auto` resolves per batch),
    // not the one configured.
    let dispatched = par.stats.engine_dispatched.unwrap_or(engine);
    outln!(
        "{name}: {} queries; SeqCFL {} steps; ParCFL({threads}, {}, engine={dispatched}) \
         speedup {:.1}x (jmps {}, ETs {}, wall {:?})",
        b.queries.len(),
        seq.stats.makespan,
        mode.label(),
        seq.stats.makespan as f64 / par.stats.makespan as f64,
        par.stats.jmp_edges,
        par.stats.early_terminations,
        par.stats.wall
    );
    if threaded && dispatched == Engine::Demand {
        let t = par.stats.obs_totals();
        outln!(
            "dispatch [{}]: {} local pops, {} steals ({} items), {} idle spins, \
             lock wait {:?}, steal wait {:?}",
            if stealing { "stealing" } else { "mutex" },
            t.local_pops,
            t.steals_succeeded,
            t.items_stolen,
            t.idle_spins,
            t.lock_wait(),
            t.steal_wait()
        );
    }
}

fn cmd_check(args: &[String]) {
    use parcfl::check::{failure_detail, run_fuzz, test_seed, FuzzConfig, Scenario};

    if let Some(path) = flag_value(args, "--replay") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        let scenario = Scenario::from_snapshot(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        });
        outln!(
            "{path}: {} nodes, {} edges, {} queries, {} edits{}{}",
            scenario.pag.node_count(),
            scenario.pag.edge_count(),
            scenario.queries.len(),
            scenario.deltas.len(),
            if scenario.solver.chaos_jmp_ignore_ctx {
                " [chaos fault injected]"
            } else {
                ""
            },
            if scenario.solver.chaos_skip_invalidation {
                " [invalidation disabled]"
            } else {
                ""
            }
        );
        match failure_detail(&scenario) {
            Some(detail) => {
                outln!("still fails: {detail}");
                exit(1);
            }
            None => outln!("replays clean: solver agrees with the oracle"),
        }
        return;
    }

    let iters: u64 = flag_value(args, "--fuzz")
        .map(|n| {
            n.parse().unwrap_or_else(|_| {
                eprintln!("--fuzz expects an integer");
                exit(2);
            })
        })
        .unwrap_or(25);
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("--seed expects an integer");
            exit(2);
        }),
        None => test_seed(),
    };
    let cfg = FuzzConfig {
        iters,
        seed,
        shrink: !args.iter().any(|a| a == "--no-shrink"),
        chaos: args.iter().any(|a| a == "--chaos"),
        delta: args.iter().any(|a| a == "--delta"),
        chaos_invalidation: args.iter().any(|a| a == "--chaos-invalidation"),
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    outln!(
        "fuzz: {} iterations, seed {seed}; {} answers compared, {} skipped \
         (out of budget), {} skipped (oracle step cap)",
        report.iters_run,
        report.compared,
        report.skipped_oob,
        report.skipped_cap
    );
    outln!(
        "soundness: every completed demand answer within the Andersen \
         inclusion solution; precision {:.3} (demand {} / inclusion {} pts entries)",
        report.precision_ratio(),
        report.demand_pts,
        report.inclusion_pts
    );
    match report.failure {
        None => outln!("ok: no differential mismatches, no soundness violations"),
        Some(f) => {
            let out_path =
                flag_value(args, "--out").unwrap_or_else(|| "counterexample.snap".to_string());
            outln!(
                "FAILURE at iteration {} (seed {}): {}",
                f.iteration,
                f.seed,
                f.detail
            );
            if let Some(st) = f.shrink_stats {
                outln!(
                    "shrunk {} -> {} edges, {} -> {} queries, {} -> {} edits \
                     in {} predicate checks",
                    st.edges.0,
                    st.edges.1,
                    st.queries.0,
                    st.queries.1,
                    st.deltas.0,
                    st.deltas.1,
                    st.checks
                );
            }
            std::fs::write(&out_path, f.scenario.to_snapshot()).unwrap_or_else(|e| {
                eprintln!("cannot write {out_path}: {e}");
                exit(1);
            });
            outln!("counterexample written to {out_path}");
            outln!("reproduce: parcfl check --fuzz {iters} --seed {}", f.seed);
            exit(1);
        }
    }
}

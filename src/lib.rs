//! # parcfl — parallel pointer analysis with CFL-reachability
//!
//! Umbrella crate re-exporting the whole system. See README.md for a tour.

pub mod clients;

pub use parcfl_runtime::AnalysisSession;

pub use parcfl_andersen as andersen;
pub use parcfl_bench as bench;
pub use parcfl_check as check;
pub use parcfl_concurrent as concurrent;
pub use parcfl_core as core;
pub use parcfl_frontend as frontend;
pub use parcfl_pag as pag;
pub use parcfl_runtime as runtime;
pub use parcfl_sched as sched;
pub use parcfl_synth as synth;

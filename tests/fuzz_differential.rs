//! Differential-testing entrypoints: the production solver against the
//! naive oracle and the Andersen whole-program solution, across modes,
//! backends and seeded schedule perturbations (DESIGN.md §10).
//!
//! All randomness derives from `PARCFL_TEST_SEED` (default fixed); every
//! failure message prints the seed to replay with. `PARCFL_FUZZ_ITERS`
//! scales the fuzz loop (default 100).

use parcfl::check::seed::derive;
use parcfl::check::{
    check_soundness, diff_answers, run_fuzz, scenario_fails, test_seed, FuzzConfig, OracleCache,
    OracleConfig, Scenario,
};
use parcfl::core::SolverConfig;
use parcfl::runtime::run_seq;
use parcfl::synth::{build_bench, table1_profiles, Profile};

fn fuzz_iters() -> u64 {
    std::env::var("PARCFL_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// The sequential baseline agrees exactly with the oracle on ample-budget
/// runs — the semantic anchor every other comparison builds on.
#[test]
fn seq_matches_oracle_exactly() {
    let seed = test_seed();
    for i in 0..4u64 {
        let bench = build_bench(&Profile::tiny(derive(seed, i)));
        let cfg = SolverConfig {
            budget: 5_000_000,
            ..SolverConfig::sequential()
        };
        let result = run_seq(&bench.pag, &bench.queries, &cfg);
        let mut oracle = OracleCache::new(&bench.pag, OracleConfig::default());
        let report = diff_answers(&result.answers, &mut oracle);
        assert!(
            report.ok(),
            "PARCFL_TEST_SEED={seed} profile tiny({}): {:?}",
            derive(seed, i),
            report.mismatches
        );
        assert!(report.compared > 0, "nothing completed under ample budget");
    }
}

/// 100 seeded fuzz iterations across Naive/D/DQ × Simulated/Threaded,
/// ample and tight budgets, perturbed schedules, bounded stores: zero
/// oracle mismatches, zero soundness violations.
#[test]
fn fuzz_differential_zero_mismatches() {
    let seed = test_seed();
    let cfg = FuzzConfig {
        iters: fuzz_iters(),
        seed,
        shrink: false,
        threaded_every: 10,
        chaos: false,
        use_small: true,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    if let Some(f) = &report.failure {
        panic!(
            "PARCFL_TEST_SEED={seed} iteration {}: {}\n{}",
            f.iteration,
            f.detail,
            f.scenario.to_snapshot()
        );
    }
    assert!(report.compared > 0, "fuzzer compared nothing");
    let ratio = report.precision_ratio();
    assert!(
        ratio <= 1.0,
        "demand answers larger than the inclusion-based over-approximation \
         (ratio {ratio}, seed {seed})"
    );
}

/// Demand ⊆ Andersen on every table1 synthetic benchmark under its own
/// evaluation budget (completed answers only; OutOfBudget says nothing).
///
/// Each bench checks a deterministic stride sample of ≤ 100 queries to
/// keep debug-build test time bounded; set `PARCFL_SOUNDNESS_FULL=1` for
/// the exhaustive sweep (what nightly CI runs via `parcfl check`).
#[test]
fn andersen_soundness_on_table1_suite() {
    let full = std::env::var("PARCFL_SOUNDNESS_FULL").is_ok();
    for profile in table1_profiles() {
        let bench = build_bench(&profile);
        let queries: Vec<_> = if full || bench.queries.len() <= 100 {
            bench.queries.clone()
        } else {
            let stride = bench.queries.len().div_ceil(100);
            bench.queries.iter().copied().step_by(stride).collect()
        };
        let result = run_seq(&bench.pag, &queries, &bench.solver);
        let report = check_soundness(&bench.pag, &result.answers);
        assert!(
            report.ok(),
            "{}: {} soundness violations, first {:?}",
            bench.name,
            report.violations.len(),
            report.violations.first()
        );
        assert!(
            report.precision_ratio() <= 1.0,
            "{}: demand answers exceed inclusion sizes",
            bench.name
        );
    }
}

/// Fault-injection self-test: with `chaos_jmp_ignore_ctx` (context-blind
/// jmp sharing) the fuzzer must catch the corruption and shrink it to a
/// counterexample of ≤ 10 edges and ≤ 2 queries that round-trips through
/// the snapshot format and disappears when the fault is disabled.
#[test]
fn chaos_bug_is_caught_and_shrinks_small() {
    let seed = test_seed();
    // Greedy shrinking is 1-minimal, not globally minimal: an unlucky
    // instance can bottom out just above the bound. Scan a few attempts
    // and keep the smallest counterexample, stopping as soon as one
    // meets the target.
    let mut found: Option<parcfl::check::FuzzFailure> = None;
    for attempt in 0..8u64 {
        let cfg = FuzzConfig {
            iters: 15,
            seed: derive(seed, 0xC4A0_5000 + attempt),
            shrink: true,
            threaded_every: 0,
            chaos: true,
            use_small: false,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        if let Some(f) = report.failure {
            let better = found
                .as_ref()
                .is_none_or(|b| f.scenario.pag.edge_count() < b.scenario.pag.edge_count());
            if better {
                found = Some(f);
            }
            let best = found.as_ref().unwrap();
            if best.scenario.pag.edge_count() <= 10 && best.scenario.queries.len() <= 2 {
                break;
            }
        }
    }
    let f = found.unwrap_or_else(|| {
        panic!("PARCFL_TEST_SEED={seed}: injected sharing bug was never caught")
    });
    let sc = &f.scenario;
    assert!(
        sc.pag.edge_count() <= 10,
        "PARCFL_TEST_SEED={seed}: shrunk to {} edges (> 10)\n{}",
        sc.pag.edge_count(),
        sc.to_snapshot()
    );
    assert!(
        sc.queries.len() <= 2,
        "PARCFL_TEST_SEED={seed}: shrunk to {} queries (> 2)",
        sc.queries.len()
    );
    // The minimised counterexample survives a snapshot round-trip…
    let back = Scenario::from_snapshot(&sc.to_snapshot()).expect("snapshot parses");
    assert!(
        scenario_fails(&back),
        "PARCFL_TEST_SEED={seed}: round-tripped counterexample no longer fails"
    );
    // …and the failure is the injected fault, not the input: the same
    // scenario passes with the fault disabled.
    let mut clean = back.clone();
    clean.solver.chaos_jmp_ignore_ctx = false;
    assert!(
        !scenario_fails(&clean),
        "PARCFL_TEST_SEED={seed}: scenario fails even without the injected fault"
    );
}

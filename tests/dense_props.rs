//! Backend-identity properties for the dense-state solver core
//! (DESIGN.md §11): the hash and dense visited-state backends, and the
//! demand and matrix engines, must be indistinguishable in every
//! completed answer on seeded synthetic programs — and the matrix
//! engine's parallel frontier sweeps must be bit-identical at every
//! sweep worker count.
//!
//! All randomness derives from `PARCFL_TEST_SEED` (default fixed); every
//! failure message prints the seed to replay with. The CI stress job
//! raises the proptest sampling with `PROPTEST_CASES` and pins the sweep
//! worker counts with `PARCFL_STRESS_THREADS` (default `1,2,4,8`).

use parcfl::check::seed::derive;
use parcfl::check::{failure_detail, test_seed, Scenario};
use parcfl::core::{Answer, MatrixSolver, SolverConfig, StateBackend};
use parcfl::pag::EdgeClass;
use parcfl::runtime::{run_matrix, run_seq, Backend, Engine, Mode, RunConfig, TraceLevel};
use parcfl::synth::mutate::canonicalize;
use parcfl::synth::{build_bench, Profile};
use proptest::prelude::*;

/// The node ids set in one packed adjacency row, ascending.
fn row_bits(row: &[u64]) -> Vec<u32> {
    let mut v = Vec::new();
    for (wi, &word) in row.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            v.push(wi as u32 * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
    v
}

/// A one-worker simulated-backend `RunConfig` wrapping `solver` — the
/// sequential-matrix baseline configuration.
fn matrix_cfg(solver: &SolverConfig) -> RunConfig {
    RunConfig::new(Mode::Naive, 1, Backend::Simulated).with_solver(solver.clone())
}

/// Case count: `PROPTEST_CASES` when set (the CI stress job raises it),
/// else a small default suitable for tier-1 runs.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Sweep worker counts: `PARCFL_STRESS_THREADS` (e.g. `"4"` for one
/// matrix leg of the CI stress job) or the full default ladder.
fn worker_counts() -> Vec<usize> {
    std::env::var("PARCFL_STRESS_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random programs, budgets and sensitivity: the parallel matrix
    /// engine is bit-identical to the one-worker matrix baseline at every
    /// stress worker count (answers, scan totals, Halt verdicts), and
    /// every demand-Complete answer matches the matrix answer exactly.
    #[test]
    fn prop_parallel_matrix_matches_sequential_and_demand(
        seed in 0u64..1 << 32,
        tight in any::<bool>(),
        ctx in any::<bool>(),
    ) {
        let bench = build_bench(&Profile::tiny(seed));
        let cfg = SolverConfig {
            budget: if tight { 1_000 + seed % 4_000 } else { 5_000_000 },
            context_sensitive: ctx,
            ..SolverConfig::default()
        };
        let base = run_matrix(&bench.pag, &bench.queries, &matrix_cfg(&cfg));
        for &workers in &worker_counts() {
            let par_cfg = RunConfig::new(Mode::Naive, workers, Backend::Simulated)
                .with_solver(cfg.clone());
            let par = run_matrix(&bench.pag, &bench.queries, &par_cfg);
            prop_assert_eq!(base.sorted_answers(), par.sorted_answers());
            prop_assert_eq!(base.stats.traversed_steps, par.stats.traversed_steps);
            prop_assert_eq!(base.stats.out_of_budget, par.stats.out_of_budget);
            prop_assert!(par.stats.makespan <= base.stats.makespan);
        }
        // Demand-Complete answers are a lower bound the matrix engine
        // must reproduce exactly (tight budgets may legitimately differ
        // in *which* queries complete, never in a completed set's value).
        let demand = run_seq(&bench.pag, &bench.queries, &cfg);
        for ((q, d), (qm, m)) in demand.answers.iter().zip(base.answers.iter()) {
            prop_assert_eq!(q, qm);
            if let (Answer::Complete(dp), Answer::Complete(mp)) = (d, m) {
                prop_assert_eq!(dp, mp);
            }
        }
    }

    /// Random programs: every stored bit-packed adjacency row enumerates
    /// exactly the successor/predecessor set of the corresponding CSR
    /// slice (a row is absent when the slice holds fewer than
    /// `ROW_MIN_BITS` distinct successors — the scan then walks the
    /// slice; a whole class is absent when the density heuristic kept it
    /// on CSR), and matrix sweeps are bit-identical with packed scans on
    /// and off at every stress worker count.
    #[test]
    fn prop_packed_rows_match_csr_and_sweeps_bit_identical(
        seed in 0u64..1 << 32,
        tight in any::<bool>(),
        ctx in any::<bool>(),
    ) {
        let bench = build_bench(&Profile::tiny(seed));
        let pag = &bench.pag;
        let packed = pag.packed();
        for class in [EdgeClass::New, EdgeClass::AssignLocal, EdgeClass::AssignGlobal] {
            for incoming in [true, false] {
                let pc = if incoming {
                    packed.in_packed(class)
                } else {
                    packed.out_packed(class)
                };
                // A class the heuristic left unpacked is the sparse-kind
                // CSR fallback: there is nothing to cross-check, the CSR
                // slices stay the only representation.
                let Some(pc) = pc else { continue };
                for n in pag.node_ids() {
                    let mut csr: Vec<u32> = if incoming {
                        pag.incoming_kind(n, class).iter().map(|e| e.src.raw()).collect()
                    } else {
                        pag.outgoing_kind(n, class).iter().map(|e| e.dst.raw()).collect()
                    };
                    csr.sort_unstable();
                    csr.dedup();
                    match pc.row(n.raw()) {
                        Some(row) => {
                            prop_assert_eq!(
                                row_bits(row), csr.clone(),
                                "seed={} {:?} incoming={} node {}: packed row != CSR slice",
                                seed, class, incoming, n.raw()
                            );
                            prop_assert!(
                                csr.len() >= parcfl::pag::ROW_MIN_BITS as usize,
                                "seed={} {:?} incoming={} node {}: thin row stored",
                                seed, class, incoming, n.raw()
                            );
                        }
                        None => prop_assert!(
                            csr.len() < parcfl::pag::ROW_MIN_BITS as usize,
                            "seed={} {:?} incoming={} node {}: fat row dropped \
                             ({} successors)",
                            seed, class, incoming, n.raw(), csr.len()
                        ),
                    }
                }
            }
        }
        // Sweep identity: packed on/off × worker ladder, one shared
        // baseline (unpacked, one worker).
        let cfg_off = SolverConfig {
            budget: if tight { 1_200 + seed % 3_000 } else { 5_000_000 },
            context_sensitive: ctx,
            ..SolverConfig::default()
        }
        .with_packed(false);
        let cfg_on = cfg_off.clone().with_packed(true);
        let base = run_matrix(pag, &bench.queries, &matrix_cfg(&cfg_off));
        for &workers in &worker_counts() {
            for cfg in [&cfg_on, &cfg_off] {
                let par_cfg = RunConfig::new(Mode::Naive, workers, Backend::Simulated)
                    .with_solver(cfg.clone());
                let par = run_matrix(pag, &bench.queries, &par_cfg);
                prop_assert_eq!(base.sorted_answers(), par.sorted_answers(),
                    "seed={} workers={} packed={}", seed, workers, cfg.packed);
                prop_assert_eq!(base.stats.traversed_steps, par.stats.traversed_steps,
                    "seed={} workers={} packed={}", seed, workers, cfg.packed);
                prop_assert_eq!(base.stats.out_of_budget, par.stats.out_of_budget,
                    "seed={} workers={} packed={}", seed, workers, cfg.packed);
            }
        }
    }
}

/// Deterministic sparse-kind fallback: on a graph where `assign_l` is
/// dense enough to pack but `new` is far too sparse, the packed build
/// keeps `new` on CSR — and matrix runs stay bit-identical between
/// packed and unpacked scans (the packed path reads `assign_l` rows, the
/// CSR path everything).
#[test]
fn packed_sparse_kind_falls_back_to_csr_and_matches() {
    use parcfl::pag::{EdgeKind, NodeInfo, NodeKind, PagBuilder, TypeId};
    let mut b = PagBuilder::new();
    let m = b.add_method("m");
    let mut ids = Vec::new();
    for i in 0..128u32 {
        ids.push(b.add_node(NodeInfo {
            kind: if i == 0 {
                NodeKind::Object { method: m }
            } else {
                NodeKind::Local { method: m }
            },
            ty: TypeId::from_usize(0),
            name: format!("v{i}"),
            is_application: i != 0,
        }));
    }
    // One `new` edge (1 × 8 < 128 nodes: stays on CSR) feeding a dense
    // `assign_l` chain (127 × 8 ≥ 128: packs).
    b.add_edge(ids[0], ids[1], EdgeKind::New);
    for w in ids[1..].windows(2) {
        b.add_edge(w[0], w[1], EdgeKind::AssignLocal);
    }
    let pag = b.freeze();
    let packed = pag.packed();
    assert!(packed.in_packed(EdgeClass::New).is_none(), "new stays CSR");
    assert!(
        packed.in_packed(EdgeClass::AssignLocal).is_some(),
        "assign_l packs"
    );
    let queries = pag.application_locals();
    let off = SolverConfig::default().with_packed(false);
    let on = SolverConfig::default();
    let base = run_matrix(&pag, &queries, &matrix_cfg(&off));
    assert!(base.stats.completed > 0);
    for workers in [1usize, 2, 4, 8] {
        let par_cfg =
            RunConfig::new(Mode::Naive, workers, Backend::Simulated).with_solver(on.clone());
        let par = run_matrix(&pag, &queries, &par_cfg);
        assert_eq!(
            base.sorted_answers(),
            par.sorted_answers(),
            "workers={workers}: packed/fallback mix diverges from CSR"
        );
        assert_eq!(base.stats.traversed_steps, par.stats.traversed_steps);
    }
}

/// Hash and dense visited-state tables produce bit-identical runs on
/// seeded synthetic graphs: same answers, same step counts, same
/// publication-independent stats. The state backend is a layout choice,
/// never a semantic one.
#[test]
fn hash_and_dense_runs_are_bit_identical() {
    let seed = test_seed();
    for i in 0..12u64 {
        let profile_seed = derive(seed, 0xD0_0000 + i);
        let profile = if i % 3 == 0 {
            Profile::small(profile_seed)
        } else {
            Profile::tiny(profile_seed)
        };
        let bench = build_bench(&profile);
        // Tight budgets on odd iterations: OutOfBudget decisions must
        // also be backend-independent, not just completed answers.
        let budget = if i % 2 == 0 {
            5_000_000
        } else {
            2_000 + i * 997
        };
        let mk = |state: StateBackend| SolverConfig {
            budget,
            context_sensitive: i % 4 != 3,
            memoize: i % 5 == 0,
            state,
            ..SolverConfig::default()
        };
        let hash = run_seq(&bench.pag, &bench.queries, &mk(StateBackend::Hash));
        let dense = run_seq(&bench.pag, &bench.queries, &mk(StateBackend::Dense));
        assert_eq!(
            hash.sorted_answers(),
            dense.sorted_answers(),
            "PARCFL_TEST_SEED={seed} {} budget={budget}: answers diverge",
            bench.name
        );
        assert_eq!(
            hash.stats.traversed_steps, dense.stats.traversed_steps,
            "PARCFL_TEST_SEED={seed} {}: traversal work diverges",
            bench.name
        );
        assert_eq!(
            hash.stats.completed, dense.stats.completed,
            "PARCFL_TEST_SEED={seed} {}: completion counts diverge",
            bench.name
        );
        assert_eq!(
            hash.stats.out_of_budget, dense.stats.out_of_budget,
            "PARCFL_TEST_SEED={seed} {}: OOB counts diverge",
            bench.name
        );
    }
}

/// Under an ample budget, every query the demand solver completes the
/// matrix engine also completes, with the identical answer — the
/// engine-identity half of DESIGN.md §11's bit-identical claim.
#[test]
fn demand_complete_implies_matrix_complete_and_identical() {
    let seed = test_seed();
    for i in 0..8u64 {
        let bench = build_bench(&Profile::tiny(derive(seed, 0x4DA7 + i)));
        let cfg = SolverConfig {
            budget: 5_000_000,
            context_sensitive: i % 3 != 2,
            ..SolverConfig::default()
        };
        let demand = run_seq(&bench.pag, &bench.queries, &cfg);
        let matrix = run_matrix(&bench.pag, &bench.queries, &matrix_cfg(&cfg));
        let mut completed = 0usize;
        for ((q, d), (qm, m)) in demand.answers.iter().zip(matrix.answers.iter()) {
            assert_eq!(q, qm);
            if let Answer::Complete(dp) = d {
                let Answer::Complete(mp) = m else {
                    panic!(
                        "PARCFL_TEST_SEED={seed} {} query {q:?}: demand completed, matrix did not",
                        bench.name
                    );
                };
                assert_eq!(
                    dp, mp,
                    "PARCFL_TEST_SEED={seed} {} query {q:?}: points-to sets diverge",
                    bench.name
                );
                completed += 1;
            }
        }
        assert!(completed > 0, "nothing completed under ample budget");
    }
}

/// The batch-global memo makes whole-batch matrix evaluation no more
/// than, and typically far less than, per-query demand work on dense
/// query sets that revisit the same flow structure.
#[test]
fn matrix_batch_memo_never_inflates_total_work() {
    let seed = test_seed();
    let bench = build_bench(&Profile::tiny(derive(seed, 0xBA7C)));
    let cfg = SolverConfig {
        budget: 5_000_000,
        ..SolverConfig::default()
    };
    let mut solver = MatrixSolver::new(&bench.pag, &cfg);
    let mut prev_total = 0u64;
    let first_pass: u64 = bench
        .queries
        .iter()
        .map(|&q| solver.points_to_query(q).stats.traversed_steps)
        .sum();
    prev_total += first_pass;
    // A second pass over the same batch is answered from the memo alone:
    // per-query closure evaluation never re-runs.
    let second_pass: u64 = bench
        .queries
        .iter()
        .map(|&q| solver.points_to_query(q).stats.traversed_steps)
        .sum();
    assert!(
        second_pass <= first_pass,
        "PARCFL_TEST_SEED={seed}: repeat batch did more work ({second_pass} > {first_pass})"
    );
    assert!(prev_total > 0, "first pass did no work");
}

/// Parallel frontier sweeps are a pure partition of the sequential
/// sweeps (DESIGN.md §11): at every worker count the matrix engine
/// produces bit-identical answers, identical total scan work and
/// identical budget verdicts, while the critical path (`makespan`) only
/// ever shrinks. Tight budgets are included: Halt decisions must not
/// depend on the partition either.
#[test]
fn parallel_matrix_bit_identical_across_worker_counts() {
    let seed = test_seed();
    for i in 0..10u64 {
        let bench = build_bench(&Profile::tiny(derive(seed, 0x9A_7000 + i)));
        let cfg = SolverConfig {
            budget: if i % 3 == 2 {
                1_500 + i * 331
            } else {
                5_000_000
            },
            context_sensitive: i % 4 != 3,
            ..SolverConfig::default()
        };
        let base = run_matrix(&bench.pag, &bench.queries, &matrix_cfg(&cfg));
        for workers in [2usize, 4, 8] {
            let par_cfg =
                RunConfig::new(Mode::Naive, workers, Backend::Simulated).with_solver(cfg.clone());
            let par = run_matrix(&bench.pag, &bench.queries, &par_cfg);
            assert_eq!(
                base.sorted_answers(),
                par.sorted_answers(),
                "PARCFL_TEST_SEED={seed} {} workers={workers}: answers diverge",
                bench.name
            );
            assert_eq!(
                base.stats.traversed_steps, par.stats.traversed_steps,
                "PARCFL_TEST_SEED={seed} {} workers={workers}: scan totals diverge",
                bench.name
            );
            assert_eq!(
                base.stats.out_of_budget, par.stats.out_of_budget,
                "PARCFL_TEST_SEED={seed} {} workers={workers}: Halt verdicts diverge",
                bench.name
            );
            assert!(
                par.stats.makespan <= base.stats.makespan,
                "PARCFL_TEST_SEED={seed} {} workers={workers}: critical path grew \
                 ({} > {})",
                bench.name,
                par.stats.makespan,
                base.stats.makespan
            );
        }
    }
}

/// ≥ 200 seeded matrix-engine scenarios through the parcfl-check
/// differential harness: every completed matrix answer matches the naive
/// oracle exactly and is sound against Andersen, and (via the harness's
/// parallel-matrix dimension) every scenario replays bit-identically at
/// sweep worker counts 1/2/4/8. Zero mismatches.
#[test]
fn matrix_differential_two_hundred_scenarios() {
    let seed = test_seed();
    let mut compared_scenarios = 0u32;
    for i in 0..200u64 {
        let s = derive(seed, 0x3A7_0000 + i);
        let bench = build_bench(&Profile::tiny(s));
        let n = bench.queries.len();
        if n == 0 {
            continue;
        }
        // Vary the query subset, budget regime, sensitivity, state
        // backend, packed-adjacency flag and sweep worker count across
        // iterations; the engine is always Matrix. `failure_detail`
        // additionally replays each scenario over the workers 1/2/4/8 ×
        // packed on/off grid and flags any divergence.
        let take = 1 + (s as usize % 8.min(n));
        let start = (s >> 8) as usize % n;
        let queries: Vec<_> = (0..take).map(|k| bench.queries[(start + k) % n]).collect();
        let budget = if i % 4 == 0 {
            400 + (s % 4_000)
        } else {
            5_000_000
        };
        let scenario = Scenario {
            pag: canonicalize(&bench.pag),
            queries,
            mode: Mode::Naive,
            backend: Backend::Simulated,
            threads: [1usize, 2, 4, 8][(i % 4) as usize],
            solver: SolverConfig {
                budget,
                context_sensitive: i % 5 != 4,
                state: if i % 2 == 0 {
                    StateBackend::Dense
                } else {
                    StateBackend::Hash
                },
                packed: i % 3 != 2,
                ..SolverConfig::default()
            },
            fetch_cost: 0,
            perturb: None,
            store_cap: None,
            engine: Engine::Matrix,
            // Cycle the trace ladder too: recording must never perturb
            // the differential (tracing is observation-only).
            trace_level: [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full][(i % 3) as usize],
            deltas: vec![],
        };
        if let Some(detail) = failure_detail(&scenario) {
            panic!(
                "PARCFL_TEST_SEED={seed} matrix scenario {i}: {detail}\n{}",
                scenario.to_snapshot()
            );
        }
        compared_scenarios += 1;
    }
    assert!(
        compared_scenarios >= 200,
        "only {compared_scenarios} scenarios ran"
    );
}

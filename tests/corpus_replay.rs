//! Regression corpus replay: every `tests/corpus/*.snap` scenario must
//! parse, run on its recorded configuration, and agree with the naive
//! oracle and the Andersen inclusion solution. See tests/corpus/README.md
//! for the format and the workflow for adding entries.

use parcfl::check::{failure_detail, Scenario};

#[test]
fn corpus_snapshots_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    entries.sort();
    // An empty corpus passes: the test pins whatever has been committed,
    // it does not require anything to have been committed.
    for path in entries {
        let name = path.display();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut scenario = Scenario::from_snapshot(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Counterexamples are committed as found — including injected
        // faults. Replay checks the production solver, so fault
        // injection (context-blind jmp keys, skipped delta
        // invalidation) is cleared.
        scenario.solver.chaos_jmp_ignore_ctx = false;
        scenario.solver.chaos_skip_invalidation = false;
        if let Some(detail) = failure_detail(&scenario) {
            panic!("{name}: replay disagrees with the oracle: {detail}");
        }
    }
}

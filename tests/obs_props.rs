//! Property-based tests for the observability layer: tracing must be
//! *observation only*. Across random benchmarks, enabling
//! [`TraceLevel::Spans`] or [`TraceLevel::Full`] must leave answers and
//! the charged/traversed step accounting bit-identical to
//! [`TraceLevel::Off`] on every backend — the recorder may watch the
//! solver, never steer it.
//!
//! Determinism caveat: the sequential and simulated backends are fully
//! deterministic, so *all* counters must match exactly. Real threads with
//! a shared jmp store are not (publication timing legitimately shifts
//! step counts between runs), so the threaded legs pin one worker for the
//! exact-count comparison and check answers only at higher counts.

use parcfl::core::NoJmpStore;
use parcfl::runtime::{
    run_matrix, run_seq_traced, run_simulated, run_threaded, Backend, LogHistogram, Mode,
    RunConfig, TraceLevel,
};
use parcfl::synth::{build_bench, Profile};
use proptest::collection::vec;
use proptest::prelude::*;

/// Case count: `PROPTEST_CASES` when set (the CI stress job raises it),
/// else a small default suitable for tier-1 runs.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Ample budget so answers cannot depend on traversal order (a tight `B`
/// legitimately flips out-of-budget verdicts between interleavings).
fn bench_for(seed: u64) -> parcfl::synth::Bench {
    let mut b = build_bench(&Profile::tiny(seed));
    b.solver = b
        .solver
        .clone()
        .with_budget(5_000_000)
        .without_tau_thresholds();
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Sequential backend: every trace level answers exactly what Off
    /// answers, with identical step accounting; Off yields no trace,
    /// Spans and Full yield a single-worker trace with events.
    #[test]
    fn seq_tracing_is_observation_only(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let off = run_seq_traced(&b.pag, &b.queries, &b.solver, &NoJmpStore, 0, TraceLevel::Off);
        prop_assert!(off.trace.is_none(), "Off must not allocate a trace");
        for level in [TraceLevel::Spans, TraceLevel::Full] {
            let on = run_seq_traced(&b.pag, &b.queries, &b.solver, &NoJmpStore, 0, level);
            prop_assert_eq!(on.sorted_answers(), off.sorted_answers(), "{:?} seed {}", level, seed);
            prop_assert_eq!(on.stats.traversed_steps, off.stats.traversed_steps);
            prop_assert_eq!(on.stats.charged_steps, off.stats.charged_steps);
            prop_assert_eq!(on.stats.completed, off.stats.completed);
            let trace = on.trace.expect("enabled level yields a trace");
            prop_assert!(trace.real_time);
            prop_assert_eq!(trace.workers.len(), 1);
            prop_assert!(trace.event_count() > 0, "{:?} recorded nothing", level);
        }
    }

    /// Simulated backend (fully deterministic): Full tracing reproduces
    /// Off's makespan and step counts exactly, per mode, and the trace
    /// carries one virtual-time track per simulated worker.
    #[test]
    fn simulated_tracing_is_observation_only(seed in 0u64..1_000) {
        let b = bench_for(seed);
        for mode in [Mode::Naive, Mode::DataSharing, Mode::DataSharingSched] {
            let cfg = RunConfig::new(mode, 4, Backend::Simulated).with_solver(b.solver.clone());
            let off = run_simulated(&b.pag, &b.queries, &cfg);
            prop_assert!(off.trace.is_none());
            let full = run_simulated(
                &b.pag, &b.queries, &cfg.clone().with_tracing(TraceLevel::Full));
            prop_assert_eq!(
                full.sorted_answers(), off.sorted_answers(), "{:?} seed {}", mode, seed);
            prop_assert_eq!(full.stats.makespan, off.stats.makespan);
            prop_assert_eq!(full.stats.traversed_steps, off.stats.traversed_steps);
            prop_assert_eq!(full.stats.charged_steps, off.stats.charged_steps);
            let trace = full.trace.expect("Full yields a trace");
            prop_assert!(!trace.real_time, "simulated traces use virtual time");
            prop_assert_eq!(trace.workers.len(), 4);
            prop_assert!(trace.event_count() > 0);
        }
    }

    /// Threaded backend, both dispatch disciplines: with one worker the
    /// run is deterministic, so Full must match Off's step counts
    /// exactly; with four workers answers must still match and the trace
    /// must carry one wall-clock track per worker.
    #[test]
    fn threaded_tracing_is_observation_only(seed in 0u64..1_000) {
        let b = bench_for(seed);
        for stealing in [false, true] {
            let cfg1 = RunConfig::new(Mode::DataSharingSched, 1, Backend::Threaded)
                .with_solver(b.solver.clone())
                .with_stealing(stealing);
            let off = run_threaded(&b.pag, &b.queries, &cfg1);
            prop_assert!(off.trace.is_none());
            let full = run_threaded(
                &b.pag, &b.queries, &cfg1.clone().with_tracing(TraceLevel::Full));
            prop_assert_eq!(
                full.sorted_answers(), off.sorted_answers(),
                "stealing={} seed {}", stealing, seed);
            prop_assert_eq!(full.stats.traversed_steps, off.stats.traversed_steps);
            prop_assert_eq!(full.stats.charged_steps, off.stats.charged_steps);
            prop_assert!(full.trace.expect("Full yields a trace").event_count() > 0);

            let cfg4 = RunConfig::new(Mode::DataSharingSched, 4, Backend::Threaded)
                .with_solver(b.solver.clone())
                .with_stealing(stealing)
                .with_tracing(TraceLevel::Full);
            let r4 = run_threaded(&b.pag, &b.queries, &cfg4);
            prop_assert_eq!(
                r4.sorted_answers(), off.sorted_answers(),
                "stealing={} x4 seed {}", stealing, seed);
            let trace = r4.trace.expect("Full yields a trace");
            prop_assert!(trace.real_time);
            prop_assert_eq!(trace.workers.len(), 4);
            prop_assert!(trace.event_count() > 0);
        }
    }

    /// Whole-program matrix engine: tracing must be observation-only at
    /// every sweep-worker count × packed-kernel setting. The engine is
    /// deterministic by construction, so the Off baseline (one worker,
    /// packed off) must be matched bit-for-bit — answers, step/budget
    /// accounting, interner growth *and* the new kernel-attribution
    /// counters (packed gathers, CSR fallback rows, per-class sweep
    /// steps) — while Full fills lanes without perturbing any of it.
    #[test]
    fn matrix_tracing_is_observation_only(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let base_cfg = RunConfig::new(Mode::Naive, 1, Backend::Simulated)
            .with_solver(b.solver.clone().with_packed(false));
        let base = run_matrix(&b.pag, &b.queries, &base_cfg);
        prop_assert!(base.trace.is_none(), "Off must not allocate a trace");
        prop_assert!(
            !base.stats.hists.wave_width.is_empty(),
            "wave histograms are always on"
        );
        for workers in [1usize, 2, 4, 8] {
            for packed in [false, true] {
                let cfg = RunConfig::new(Mode::Naive, workers, Backend::Simulated)
                    .with_solver(b.solver.clone().with_packed(packed))
                    .with_tracing(TraceLevel::Full);
                let full = run_matrix(&b.pag, &b.queries, &cfg);
                prop_assert_eq!(
                    full.sorted_answers(), base.sorted_answers(),
                    "workers={} packed={} seed {}", workers, packed, seed);
                prop_assert_eq!(full.stats.traversed_steps, base.stats.traversed_steps);
                prop_assert_eq!(full.stats.charged_steps, base.stats.charged_steps);
                prop_assert_eq!(full.stats.completed, base.stats.completed);
                prop_assert_eq!(full.stats.out_of_budget, base.stats.out_of_budget);
                prop_assert_eq!(full.stats.interner_ctxs, base.stats.interner_ctxs);
                prop_assert_eq!(full.stats.peak_state_words, base.stats.peak_state_words);
                // Kernel attribution: class steps are representation- and
                // worker-invariant; the packed/CSR split depends only on
                // the packed setting, never on workers or tracing.
                prop_assert_eq!(
                    full.stats.sweep_class_steps, base.stats.sweep_class_steps,
                    "workers={} packed={} seed {}", workers, packed, seed);
                if !packed {
                    prop_assert_eq!(full.stats.packed_gathers, 0);
                    prop_assert_eq!(
                        full.stats.csr_fallback_rows, base.stats.csr_fallback_rows);
                }
                let trace = full.trace.expect("Full yields a trace");
                prop_assert!(trace.real_time);
                prop_assert!(trace.event_count() > 0);
                for w in &trace.workers {
                    prop_assert!(
                        w.events.windows(2).all(|p| p[0].ts <= p[1].ts),
                        "lane {} timestamps not monotone", w.worker);
                }
            }
        }
    }
}

/// Records every value of `values` into a fresh histogram.
fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

// The per-worker latency partials are folded into `RunStats` in whatever
// order workers finish, so [`LogHistogram::merge`] must be a commutative
// monoid and must agree with having recorded everything into one
// histogram. Values stay below 2^40 so `sum` cannot saturate in a test.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases().max(32)))]

    /// Merge is commutative and associative, preserves `count` and
    /// `sum` exactly, and has the empty histogram as identity.
    #[test]
    fn log_histogram_merge_is_a_commutative_monoid(
        a in vec(0u64..1 << 40, 0..64),
        b in vec(0u64..1 << 40, 0..64),
        c in vec(0u64..1 << 40, 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha;
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must associate");

        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
        prop_assert_eq!(ab_c.sum(), a.iter().chain(&b).chain(&c).sum::<u64>());

        let mut with_empty = ab_c.clone();
        with_empty.merge(&LogHistogram::new());
        prop_assert_eq!(with_empty, ab_c, "empty histogram must be the identity");
    }

    /// Merging partials equals recording the concatenation, and the
    /// reported quantiles of the merged histogram stay ordered.
    #[test]
    fn log_histogram_merge_matches_concatenation(
        a in vec(0u64..1 << 40, 0..64),
        b in vec(0u64..1 << 40, 1..64),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&merged, &hist_of(&concat));

        let p50 = merged.percentile(0.50);
        let p90 = merged.percentile(0.90);
        let p99 = merged.percentile(0.99);
        prop_assert!(
            p50 <= p90 && p90 <= p99,
            "percentiles out of order: p50 {p50} p90 {p90} p99 {p99}"
        );
        // Each reported quantile is a bucket upper bound, so it must sit
        // strictly above the smallest recorded value.
        let min = *concat.iter().min().unwrap();
        prop_assert!(p50 > min, "p50 {p50} not above min {min}");
    }
}

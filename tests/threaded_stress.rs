//! Stress tests for the real-thread backend: many workers against one
//! shared jmp store with a tight budget, repeated to shake out races.
//! (This machine has one core, but the scheduler still interleaves
//! threads preemptively.)

use parcfl::core::{Answer, SolverConfig};
use parcfl::runtime::{run_threaded, Backend, Mode, RunConfig};
use parcfl::synth::{build_bench, Profile};

#[test]
fn threaded_sharing_under_contention_is_safe_and_consistent() {
    let b = build_bench(&Profile::tiny(99));
    // Ample budget: all runs must agree exactly, no matter the interleaving.
    let mut cfg = RunConfig::new(Mode::DataSharing, 8, Backend::Threaded);
    cfg.solver = SolverConfig::default().with_budget(5_000_000);
    cfg.solver.tau_finished = 0;
    cfg.solver.tau_unfinished = 0;

    let reference = run_threaded(&b.pag, &b.queries, &cfg).sorted_answers();
    for _ in 0..5 {
        let r = run_threaded(&b.pag, &b.queries, &cfg);
        assert_eq!(r.sorted_answers(), reference);
    }
}

#[test]
fn threaded_tight_budget_never_loses_queries() {
    let b = build_bench(&Profile::tiny(7));
    let mut cfg = RunConfig::new(Mode::DataSharingSched, 6, Backend::Threaded);
    cfg.solver = SolverConfig::default().with_budget(50);
    cfg.solver.tau_unfinished = 0;
    for _ in 0..5 {
        let r = run_threaded(&b.pag, &b.queries, &cfg);
        assert_eq!(r.stats.queries, b.queries.len());
        assert_eq!(r.answers.len(), b.queries.len());
        assert_eq!(
            r.stats.completed + r.stats.out_of_budget,
            b.queries.len(),
            "every query gets a verdict"
        );
        // Completed answers, whenever they appear, are always the same as
        // a sequential run's (shared state cannot change results).
        let seq = parcfl::runtime::run_seq(&b.pag, &b.queries, &cfg.solver);
        for ((qa, a), (qb, s)) in r.sorted_answers().iter().zip(seq.sorted_answers().iter()) {
            assert_eq!(qa, qb);
            if let (Answer::Complete(_), Answer::Complete(_)) = (a, s) {
                assert_eq!(a, s);
            }
        }
    }
}

#[test]
fn thread_count_does_not_change_ample_budget_results() {
    let b = build_bench(&Profile::tiny(3));
    let solver = SolverConfig::default().with_budget(5_000_000);
    let mut reference = None;
    for threads in [1, 2, 4, 8, 16] {
        let mut cfg = RunConfig::new(Mode::DataSharing, threads, Backend::Threaded);
        cfg.solver = solver.clone();
        let r = run_threaded(&b.pag, &b.queries, &cfg).sorted_answers();
        match &reference {
            None => reference = Some(r),
            Some(expect) => assert_eq!(&r, expect, "t={threads}"),
        }
    }
}

//! Stress tests for the real-thread backend: many workers against one
//! shared jmp store with a tight budget, repeated to shake out races.
//! (This machine has one core, but the scheduler still interleaves
//! threads preemptively.)
//!
//! Benchmark seeds derive from `PARCFL_TEST_SEED` (default fixed) and
//! every failure message prints the seed, so a failing run is
//! reproducible with `PARCFL_TEST_SEED=<n> cargo test`.

use parcfl::check::seed::derive;
use parcfl::check::test_seed;
use parcfl::core::{Answer, SolverConfig};
use parcfl::runtime::{run_threaded, Backend, Mode, RunConfig};
use parcfl::synth::{build_bench, Profile};

#[test]
fn threaded_sharing_under_contention_is_safe_and_consistent() {
    let seed = test_seed();
    let b = build_bench(&Profile::tiny(derive(seed, 99)));
    // Ample budget: all runs must agree exactly, no matter the interleaving.
    let mut cfg = RunConfig::new(Mode::DataSharing, 8, Backend::Threaded);
    cfg.solver = SolverConfig::default().with_budget(5_000_000);
    cfg.solver.tau_finished = 0;
    cfg.solver.tau_unfinished = 0;

    let reference = run_threaded(&b.pag, &b.queries, &cfg).sorted_answers();
    for round in 0..5 {
        let r = run_threaded(&b.pag, &b.queries, &cfg);
        assert_eq!(
            r.sorted_answers(),
            reference,
            "PARCFL_TEST_SEED={seed} round {round}"
        );
    }
}

#[test]
fn threaded_tight_budget_never_loses_queries() {
    let seed = test_seed();
    let b = build_bench(&Profile::tiny(derive(seed, 7)));
    let mut cfg = RunConfig::new(Mode::DataSharingSched, 6, Backend::Threaded);
    cfg.solver = SolverConfig::default().with_budget(50);
    cfg.solver.tau_unfinished = 0;
    for _ in 0..5 {
        let r = run_threaded(&b.pag, &b.queries, &cfg);
        assert_eq!(r.stats.queries, b.queries.len(), "PARCFL_TEST_SEED={seed}");
        assert_eq!(r.answers.len(), b.queries.len(), "PARCFL_TEST_SEED={seed}");
        assert_eq!(
            r.stats.completed + r.stats.out_of_budget,
            b.queries.len(),
            "every query gets a verdict (PARCFL_TEST_SEED={seed})"
        );
        // Completed answers, whenever they appear, are always the same as
        // a sequential run's (shared state cannot change results).
        let seq = parcfl::runtime::run_seq(&b.pag, &b.queries, &cfg.solver);
        for ((qa, a), (qb, s)) in r.sorted_answers().iter().zip(seq.sorted_answers().iter()) {
            assert_eq!(qa, qb, "PARCFL_TEST_SEED={seed}");
            if let (Answer::Complete(_), Answer::Complete(_)) = (a, s) {
                assert_eq!(a, s, "PARCFL_TEST_SEED={seed} query {qa}");
            }
        }
    }
}

#[test]
fn thread_count_does_not_change_ample_budget_results() {
    let seed = test_seed();
    let b = build_bench(&Profile::tiny(derive(seed, 3)));
    let solver = SolverConfig::default().with_budget(5_000_000);
    let mut reference = None;
    for threads in [1, 2, 4, 8, 16] {
        let mut cfg = RunConfig::new(Mode::DataSharing, threads, Backend::Threaded);
        cfg.solver = solver.clone();
        let r = run_threaded(&b.pag, &b.queries, &cfg).sorted_answers();
        match &reference {
            None => reference = Some(r),
            Some(expect) => assert_eq!(&r, expect, "t={threads} PARCFL_TEST_SEED={seed}"),
        }
    }
}

//! Property-based tests for the persistent `AnalysisSession`: whatever
//! the mode, backend, batch split, or store budget, a warm session must
//! answer exactly what a cold single-batch run answers. Sharing and
//! eviction may only change *cost*, never *answers*.

use parcfl::runtime::{run_seq, AnalysisSession, Backend, Mode};
use parcfl::synth::{build_bench, Profile};
use proptest::prelude::*;

/// Ample budget so answers do not depend on traversal order: a tight `B`
/// can legitimately flip out-of-budget verdicts between runs that
/// traverse different amounts (see `tests/equivalence.rs`).
fn bench_for(seed: u64) -> parcfl::synth::Bench {
    let mut b = build_bench(&Profile::tiny(seed));
    b.solver = b
        .solver
        .clone()
        .with_budget(5_000_000)
        .without_tau_thresholds();
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Multi-batch warm sessions agree with the cold sequential baseline
    /// in every mode × backend, on overlapping batches.
    #[test]
    fn warm_session_matches_cold_answers(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let cold = run_seq(&b.pag, &b.queries, &b.solver);
        let half = &b.queries[..b.queries.len() / 2];
        for mode in [Mode::Naive, Mode::DataSharing, Mode::DataSharingSched] {
            for backend in [Backend::Simulated, Backend::Threaded] {
                let mut s = AnalysisSession::new(&b.pag)
                    .with_threads(4)
                    .with_solver(b.solver.clone());
                s.submit(half, mode, backend);
                let warm = s.submit(&b.queries, mode, backend);
                prop_assert_eq!(
                    warm.sorted_answers(),
                    cold.sorted_answers(),
                    "{:?} {:?} seed {}", mode, backend, seed
                );
            }
        }
    }

    /// A tiny eviction budget must not change any answer either — evicted
    /// entries are recomputable shortcuts, not results.
    #[test]
    fn bounded_session_matches_cold_answers(seed in 0u64..1_000, budget in 1usize..6) {
        let b = bench_for(seed);
        let cold = run_seq(&b.pag, &b.queries, &b.solver);
        let half = &b.queries[..b.queries.len() / 2];
        for backend in [Backend::Simulated, Backend::Threaded] {
            let mut s = AnalysisSession::new(&b.pag)
                .with_threads(4)
                .with_solver(b.solver.clone())
                .with_store_budget(budget);
            s.submit(half, Mode::DataSharingSched, backend);
            let warm = s.submit(&b.queries, Mode::DataSharingSched, backend);
            prop_assert_eq!(
                warm.sorted_answers(),
                cold.sorted_answers(),
                "{:?} seed {} budget {}", backend, seed, budget
            );
            prop_assert!(
                s.store_entries() <= budget,
                "resident {} > budget {}", s.store_entries(), budget
            );
        }
    }

    /// `submit_seq` (sequential batches through the warm store) is also
    /// answer-preserving, and the session's cumulative counters equal the
    /// per-batch sums.
    #[test]
    fn submit_seq_matches_and_accumulates(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let cold = run_seq(&b.pag, &b.queries, &b.solver);
        let mut s = AnalysisSession::new(&b.pag).with_solver(b.solver.clone());
        let first = s.submit_seq(&b.queries);
        let second = s.submit_seq(&b.queries);
        prop_assert_eq!(first.sorted_answers(), cold.sorted_answers());
        prop_assert_eq!(second.sorted_answers(), cold.sorted_answers());
        prop_assert_eq!(s.cumulative().batches, 2);
        prop_assert_eq!(
            s.cumulative().queries,
            first.stats.queries + second.stats.queries
        );
        prop_assert_eq!(
            s.cumulative().traversed_steps,
            first.stats.traversed_steps + second.stats.traversed_steps
        );
        prop_assert_eq!(
            s.cumulative().warm_hits,
            first.stats.warm_hits + second.stats.warm_hits
        );
    }
}

//! Runs the full pipeline over every `.mj` program in `examples/programs/`
//! and checks per-program expectations.

use parcfl::core::{NoJmpStore, Solver, SolverConfig};
use parcfl::frontend::build_pag;
use parcfl::pag::Pag;

fn load(name: &str) -> Pag {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let e = build_pag(&src).expect(name);
    assert!(e.warnings.is_empty(), "{name}: {:?}", e.warnings);
    e.pag
}

fn pts(pag: &Pag, cfg: &SolverConfig, var: &str) -> Vec<String> {
    let store = NoJmpStore;
    let solver = Solver::new(pag, cfg, &store);
    let v = pag.node_by_name(var).expect(var);
    let mut names: Vec<String> = solver
        .points_to_query(v, 0)
        .answer
        .nodes()
        .unwrap_or_else(|| panic!("{var}: out of budget"))
        .iter()
        .map(|&o| pag.node(o).name.clone())
        .collect();
    names.sort();
    names
}

#[test]
fn every_corpus_program_parses_and_extracts() {
    let dir = format!("{}/examples/programs", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "mj") {
            let src = std::fs::read_to_string(&path).unwrap();
            let e = build_pag(&src).unwrap_or_else(|err| panic!("{path:?}: {err}"));
            assert!(e.pag.node_count() > 0);
            count += 1;
        }
    }
    assert!(count >= 3, "corpus has at least three programs");
}

#[test]
fn vector_precision() {
    let pag = load("vector.mj");
    let cfg = SolverConfig::default();
    assert_eq!(pts(&pag, &cfg, "s1@Main.main").len(), 1);
    assert_eq!(pts(&pag, &cfg, "s2@Main.main").len(), 1);
    assert_ne!(
        pts(&pag, &cfg, "s1@Main.main"),
        pts(&pag, &cfg, "s2@Main.main")
    );
}

#[test]
fn linked_list_recursive_heap_exhausts_budget_but_locals_resolve() {
    let pag = load("linked_list.mj");
    let cfg = SolverConfig::default();
    // The formal of push sees both pushed objects (context-insensitive
    // union over the two call sites is correct here: both really reach it).
    let v = pts(&pag, &cfg, "v@List.push");
    assert_eq!(v.len(), 2, "{v:?}");

    // Walking the recursive `next` chain makes the alias computation
    // cyclically self-dependent; the demand-driven algorithm re-traverses
    // until the budget runs out (the budget exists for exactly this —
    // Section II-B3). The query must terminate with OutOfBudget, not hang.
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);
    let got = pag.node_by_name("got@Main.main").unwrap();
    let out = solver.points_to_query(got, 0);
    assert_eq!(out.answer, parcfl::core::Answer::OutOfBudget);
    assert!(
        out.stats.charged_steps > cfg.budget,
        "budget fully consumed"
    );

    // The call-graph recursion (walk -> walk) was collapsed at extraction:
    // self-recursive param/ret edges became plain assignments.
    let e = parcfl::pag::stats::PagStats::of(&pag);
    assert!(e.params > 0);
}

#[test]
fn observer_dispatch_reaches_both_listeners() {
    let pag = load("observer.mj");
    let cfg = SolverConfig::default();
    // The event flows into both concrete listeners' fields via CHA.
    let seen = pts(&pag, &cfg, "seen@Main.main");
    assert_eq!(seen, vec!["o5@Main.main"], "{seen:?}");
    // e@Logger.on and e@Counter.on both receive the event.
    for formal in ["e@Logger.on", "e@Counter.on"] {
        let p = pts(&pag, &cfg, formal);
        assert_eq!(p, vec!["o5@Main.main"], "{formal}");
    }
}

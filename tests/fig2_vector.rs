//! End-to-end reproduction of the paper's running example (Fig. 2): the
//! `Vector` program whose points-to facts Section II walks through.
//!
//! The headline facts:
//! * `s1main` points to `o16` (the `String`) — the realisable path matches
//!   `param17`/`param17-bar` then `param18`/`ret18`;
//! * `s1main` does **not** point to `o20` (the `Integer`) — that path is
//!   unrealisable under context-sensitivity, but appears when contexts are
//!   ignored;
//! * the array object allocated in the constructor flows into `t_get`
//!   through the `st(elems)`/`ld(elems)` alias pair (`o6` flows to `t_get`).

use parcfl_core::{NoJmpStore, Solver, SolverConfig};
use parcfl_frontend::build_pag;
use parcfl_pag::{NodeId, Pag};

/// The Fig. 2 program, transliterated into `.mj`.
const VECTOR_MJ: &str = r#"
    lib class Object { }
    lib class String extends Object { }
    lib class Integer extends Object { }
    class Vector {
        field elems: Object[];
        method <init>() {
            var t: Object[];
            t = new Object[];
            this.elems = t;
        }
        method add(e: Object) {
            var t: Object[];
            t = this.elems;
            t[] = e;
        }
        method get(i: int): Object {
            var t: Object[];
            var r: Object;
            t = this.elems;
            r = t[];
            return r;
        }
    }
    class Main {
        static method main() {
            var v1: Vector; var n1: String; var s1: Object;
            var v2: Vector; var n2: Integer; var s2: Object;
            var i: int;
            v1 = new Vector;
            call v1.<init>();
            n1 = new String;
            call v1.add(n1);
            s1 = call v1.get(i);
            v2 = new Vector;
            call v2.<init>();
            n2 = new Integer;
            call v2.add(n2);
            s2 = call v2.get(i);
        }
    }
"#;

fn pts_names(pag: &Pag, cfg: &SolverConfig, var: &str) -> Vec<String> {
    let store = NoJmpStore;
    let solver = Solver::new(pag, cfg, &store);
    let v = pag.node_by_name(var).expect(var);
    let out = solver.points_to_query(v, 0);
    let mut names: Vec<String> = out
        .answer
        .nodes()
        .unwrap_or_else(|| panic!("{var} ran out of budget"))
        .iter()
        .map(|&n| pag.node(n).name.clone())
        .collect();
    names.sort();
    names
}

fn object_of(names: &[String], alloc_ty: &str) -> bool {
    // Statement indices vary with transliteration; match by method+content.
    names.iter().any(|n| n.contains(alloc_ty))
}

#[test]
fn s1_points_to_string_not_integer() {
    let pag = build_pag(VECTOR_MJ).unwrap().pag;
    let cfg = SolverConfig::default();
    let s1 = pts_names(&pag, &cfg, "s1@Main.main");

    // Exactly one object: the String allocation (statement index 2 of
    // main). Integers never reach s1 under context-sensitivity.
    assert_eq!(s1.len(), 1, "s1 pts: {s1:?}");
    assert_eq!(s1, vec!["o2@Main.main"]);

    let s2 = pts_names(&pag, &cfg, "s2@Main.main");
    assert_eq!(s2, vec!["o7@Main.main"], "s2 sees only the Integer");
}

#[test]
fn context_insensitive_analysis_conflates_the_vectors() {
    let pag = build_pag(VECTOR_MJ).unwrap().pag;
    let cfg = SolverConfig {
        context_sensitive: false,
        ..SolverConfig::default()
    };
    let s1 = pts_names(&pag, &cfg, "s1@Main.main");
    // Without context matching the unrealisable path to the Integer
    // appears: the paper's precision argument (Section II-B2).
    assert_eq!(
        s1,
        vec!["o2@Main.main", "o7@Main.main"],
        "insensitive analysis must conflate String and Integer"
    );
}

#[test]
fn constructor_array_flows_to_get_temp() {
    // o6-analog: the Object[] allocated in Vector.<init> flows to t@get
    // via the st(elems)/ld(elems) alias pair.
    let pag = build_pag(VECTOR_MJ).unwrap().pag;
    let cfg = SolverConfig::default();
    let t_get = pts_names(&pag, &cfg, "t@Vector.get");
    assert_eq!(t_get.len(), 1, "t@get pts: {t_get:?}");
    assert!(
        t_get[0].contains("@Vector.<init>"),
        "t@get must see the constructor's array: {t_get:?}"
    );
}

#[test]
fn flows_to_duality_on_the_example() {
    // For every (object o, var v) with o ∈ pts(v): v ∈ flowsTo(o).
    let pag = build_pag(VECTOR_MJ).unwrap().pag;
    let cfg = SolverConfig::default();
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);
    let queries: Vec<NodeId> = pag.application_locals();
    for &v in &queries {
        let pts = solver.points_to_query(v, 0);
        let Some(objs) = pts.answer.nodes() else {
            continue;
        };
        for o in objs {
            let ft = solver.flows_to_query(o, 0);
            let vars = ft
                .answer
                .nodes()
                .expect("flows-to within budget on this small example");
            assert!(
                vars.contains(&v),
                "duality violated: {} ∈ pts({}) but not vice versa",
                pag.node(o).name,
                pag.node(v).name
            );
        }
    }
}

#[test]
fn fig2_statistics_are_sane() {
    let e = build_pag(VECTOR_MJ).unwrap();
    assert!(e.warnings.is_empty(), "{:?}", e.warnings);
    let stats = parcfl_pag::stats::PagStats::of(&e.pag);
    assert_eq!(stats.methods, 4, "<init>, add, get, main");
    assert!(stats.params >= 5, "param edges for receivers and args");
    assert!(stats.rets >= 2, "two get call sites");
    assert!(stats.loads >= 3);
    assert!(stats.stores >= 2);
    // Sanity on helper used above.
    assert!(object_of(
        &["o0@Vector.<init>".to_string()],
        "Vector.<init>"
    ));
}

//! Golden test: the full frontend pipeline on a representative program
//! must produce exactly this PAG (node names and labelled edges). Catches
//! silent extraction regressions that behavioural tests might absorb.

use parcfl::frontend::build_pag;

const SRC: &str = "
    lib class Obj { }
    class Holder {
        field item: Obj;
        static field last: Obj;
        method put(o: Obj) {
            this.item = o;
            Holder.last = o;
        }
        method get(): Obj {
            var r: Obj;
            r = this.item;
            return r;
        }
    }
    class Main {
        method run(h: Holder) {
            var v: Obj; var out: Obj; var copy: Obj;
            v = new Obj;
            call h.put(v);
            out = call h.get();
            copy = out;
        }
    }
";

fn edge_strings() -> Vec<String> {
    let e = build_pag(SRC).unwrap();
    assert!(e.warnings.is_empty(), "{:?}", e.warnings);
    let pag = e.pag;
    let mut edges: Vec<String> = pag
        .edges()
        .iter()
        .map(|ed| {
            format!(
                "{} -{}-> {}",
                pag.node(ed.src).name,
                ed.kind.label(),
                pag.node(ed.dst).name
            )
        })
        .collect();
    edges.sort();
    edges
}

#[test]
fn golden_edge_list() {
    let expected = vec![
        "$ret@Holder.get -ret_cs1-> out@Main.run",
        "h@Main.run -param_cs0-> this@Holder.put",
        "h@Main.run -param_cs1-> this@Holder.get",
        "o0@Main.run -new-> v@Main.run",
        "o@Holder.put -assign_g-> Holder.last",
        "o@Holder.put -st(f1)-> this@Holder.put",
        "out@Main.run -assign_l-> copy@Main.run",
        "r@Holder.get -assign_l-> $ret@Holder.get",
        "this@Holder.get -ld(f1)-> r@Holder.get",
        "v@Main.run -param_cs0-> o@Holder.put",
    ];
    assert_eq!(edge_strings(), expected);
}

#[test]
fn golden_is_stable_across_runs() {
    assert_eq!(edge_strings(), edge_strings());
}

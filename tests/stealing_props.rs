//! Property-based tests for the work-stealing threaded scheduler: across
//! random benchmarks, both threaded dispatch disciplines (mutex work list
//! and work stealing) must answer exactly what the sequential baseline
//! answers — cold and warm, at every thread count — and the per-worker
//! observability records must account for every query, step, and fetch.
//!
//! The CI stress job raises the sampling with `PROPTEST_CASES` and widens
//! the sweep with `PARCFL_STRESS_THREADS` (comma-separated counts;
//! default `1,2,4,8`).

use parcfl::runtime::{run_seq, run_threaded, AnalysisSession, Backend, Mode, RunConfig};
use parcfl::synth::{build_bench, Profile};
use proptest::prelude::*;

/// Case count: `PROPTEST_CASES` when set (the CI stress job raises it),
/// else a small default suitable for tier-1 runs.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Thread counts to sweep: `PARCFL_STRESS_THREADS` (e.g. `"2"` for one
/// matrix leg) or the full default ladder.
fn thread_counts() -> Vec<usize> {
    std::env::var("PARCFL_STRESS_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Ample budget so answers cannot depend on traversal order (a tight `B`
/// legitimately flips out-of-budget verdicts between interleavings).
fn bench_for(seed: u64) -> parcfl::synth::Bench {
    let mut b = build_bench(&Profile::tiny(seed));
    b.solver = b
        .solver
        .clone()
        .with_budget(5_000_000)
        .without_tau_thresholds();
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Cold one-shot runs: mutex and stealing dispatch agree with the
    /// sequential baseline in every mode, at every thread count.
    #[test]
    fn cold_threaded_matches_sequential(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let seq = run_seq(&b.pag, &b.queries, &b.solver);
        for mode in [Mode::Naive, Mode::DataSharing, Mode::DataSharingSched] {
            for threads in thread_counts() {
                for stealing in [false, true] {
                    let cfg = RunConfig::new(mode, threads, Backend::Threaded)
                        .with_solver(b.solver.clone())
                        .with_stealing(stealing);
                    let r = run_threaded(&b.pag, &b.queries, &cfg);
                    prop_assert_eq!(
                        r.sorted_answers(),
                        seq.sorted_answers(),
                        "{:?} x{} stealing={} seed {}", mode, threads, stealing, seed
                    );
                }
            }
        }
    }

    /// Warm two-batch sessions: the stealing backend's warm answers equal
    /// the mutex backend's (and the cold sequential baseline's) at every
    /// thread count.
    #[test]
    fn warm_stealing_matches_warm_mutex(seed in 0u64..1_000) {
        let b = bench_for(seed);
        let seq = run_seq(&b.pag, &b.queries, &b.solver);
        let half = &b.queries[..b.queries.len() / 2];
        for threads in thread_counts() {
            let run_warm = |stealing: bool| {
                let mut s = AnalysisSession::new(&b.pag)
                    .with_threads(threads)
                    .with_solver(b.solver.clone())
                    .with_stealing(stealing);
                s.submit(half, Mode::DataSharingSched, Backend::Threaded);
                s.submit(&b.queries, Mode::DataSharingSched, Backend::Threaded)
            };
            let mutex = run_warm(false);
            let stealing = run_warm(true);
            prop_assert_eq!(
                stealing.sorted_answers(),
                mutex.sorted_answers(),
                "x{} seed {}", threads, seed
            );
            prop_assert_eq!(
                mutex.sorted_answers(),
                seq.sorted_answers(),
                "x{} seed {}", threads, seed
            );
        }
    }

    /// Per-worker observability closes the books: summed worker records
    /// equal the batch totals, and every scheduled group is fetched exactly
    /// once (a local pop, or the in-hand item of a successful steal).
    #[test]
    fn worker_records_sum_to_batch_totals(seed in 0u64..1_000) {
        let b = bench_for(seed);
        for threads in thread_counts() {
            for stealing in [false, true] {
                let cfg = RunConfig::new(Mode::DataSharingSched, threads, Backend::Threaded)
                    .with_solver(b.solver.clone())
                    .with_stealing(stealing);
                let schedule = parcfl::runtime::schedule_with_cap(
                    &b.pag, &b.queries, cfg.mode, cfg.group_cap,
                );
                let r = run_threaded(&b.pag, &b.queries, &cfg);
                prop_assert_eq!(r.stats.workers.len(), threads.max(1));
                let totals = r.stats.obs_totals();
                prop_assert_eq!(totals.queries as usize, r.stats.queries);
                prop_assert_eq!(totals.steps, r.stats.traversed_steps);
                let fetched = totals.local_pops
                    + if stealing { totals.steals_succeeded } else { 0 };
                prop_assert_eq!(
                    fetched,
                    schedule.groups.len() as u64,
                    "x{} stealing={} seed {}", threads, stealing, seed
                );
                if !stealing {
                    prop_assert_eq!(totals.steals_attempted, 0);
                    prop_assert_eq!(totals.steal_wait_ns, 0);
                }
            }
        }
    }
}

//! Property-based tests (proptest) over randomly generated programs.
//!
//! Programs come from the synthetic generator (arbitrary seeds and sizes),
//! so each case exercises the full pipeline: generation → parse round-trip
//! → extraction → analysis.

use parcfl::core::{Answer, NoJmpStore, SharedJmpStore, Solver, SolverConfig};
use parcfl::synth::{generate, Profile};
use proptest::prelude::*;

fn small_profile(seed: u64, apps: usize, idioms: usize) -> Profile {
    Profile {
        name: format!("prop-{seed}"),
        seed,
        value_classes: 2,
        box_classes: 2,
        collections: 1,
        app_classes: apps.clamp(1, 3),
        methods_per_class: 2,
        idioms_per_method: idioms.clamp(1, 4),
        idiom_weights: [2, 2, 2, 2, 1, 2, 2, 1, 0],
        subclass_percent: 30,
        budget: 200_000,
    }
}

fn ample() -> SolverConfig {
    SolverConfig::default().with_budget(2_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pretty-printer and parser round-trip every generated program.
    #[test]
    fn generated_programs_round_trip(seed in 0u64..10_000, apps in 1usize..4, idioms in 1usize..5) {
        let prog = generate(&small_profile(seed, apps, idioms));
        let text = parcfl::frontend::pretty::pretty(&prog);
        let back = parcfl::frontend::parse(&text).expect("reparse");
        prop_assert_eq!(prog, back);
    }

    /// pointsTo / flowsTo duality: o ∈ pts(v) ⇔ v ∈ flowsTo(o).
    #[test]
    fn points_to_flows_to_duality(seed in 0u64..10_000) {
        let prog = generate(&small_profile(seed, 2, 3));
        let pag = parcfl::frontend::extract(&prog).unwrap().pag;
        let cfg = ample();
        let store = NoJmpStore;
        let solver = Solver::new(&pag, &cfg, &store);
        for v in pag.application_locals().into_iter().take(12) {
            let Some(objs) = solver.points_to_query(v, 0).answer.nodes() else { continue };
            for o in objs {
                let vars = solver.flows_to_query(o, 0).answer.nodes();
                let Some(vars) = vars else { continue };
                prop_assert!(
                    vars.contains(&v),
                    "o={:?} in pts({:?}) but not dual", o, v
                );
            }
        }
    }

    /// Data sharing never changes completed answers.
    #[test]
    fn sharing_preserves_answers(seed in 0u64..10_000) {
        let prog = generate(&small_profile(seed, 2, 3));
        let pag = parcfl::frontend::extract(&prog).unwrap().pag;
        let cfg = ample();
        let share_cfg = SolverConfig {
            data_sharing: true,
            tau_finished: 0,
            tau_unfinished: 0,
            ..ample()
        };
        let plain_store = NoJmpStore;
        let share_store = SharedJmpStore::new();
        let plain = Solver::new(&pag, &cfg, &plain_store);
        let shared = Solver::new(&pag, &share_cfg, &share_store);
        for v in pag.application_locals() {
            let a = plain.points_to_query(v, 0).answer;
            let b = shared.points_to_query(v, 0).answer;
            if let (Answer::Complete(_), Answer::Complete(_)) = (&a, &b) {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Context-sensitive results refine context-insensitive ones.
    #[test]
    fn context_sensitivity_refines(seed in 0u64..10_000) {
        let prog = generate(&small_profile(seed, 2, 3));
        let pag = parcfl::frontend::extract(&prog).unwrap().pag;
        let cs = ample();
        let ci = SolverConfig { context_sensitive: false, ..ample() };
        let store = NoJmpStore;
        let s_cs = Solver::new(&pag, &cs, &store);
        let s_ci = Solver::new(&pag, &ci, &store);
        for v in pag.application_locals().into_iter().take(12) {
            let a = s_cs.points_to_query(v, 0).answer.nodes();
            let b = s_ci.points_to_query(v, 0).answer.nodes();
            if let (Some(a), Some(b)) = (a, b) {
                for o in &a {
                    prop_assert!(
                        b.contains(o),
                        "context-sensitive found {:?} that insensitive missed on {:?}", o, v
                    );
                }
            }
        }
    }

    /// Andersen's whole-program analysis over-approximates the demand-driven
    /// CFL results (it is context-insensitive and flow-insensitive).
    #[test]
    fn andersen_over_approximates_cfl(seed in 0u64..10_000) {
        let prog = generate(&small_profile(seed, 2, 3));
        let pag = parcfl::frontend::extract(&prog).unwrap().pag;
        let whole = parcfl::andersen::analyze(&pag);
        let cfg = ample();
        let store = NoJmpStore;
        let solver = Solver::new(&pag, &cfg, &store);
        for v in pag.application_locals().into_iter().take(12) {
            let Some(objs) = solver.points_to_query(v, 0).answer.nodes() else { continue };
            let andersen_objs = whole.pts_of(v);
            for o in objs {
                prop_assert!(
                    andersen_objs.contains(&o),
                    "CFL found {:?} for {:?} that Andersen missed (unsound?)", o, v
                );
            }
        }
    }

    /// Cycle collapsing preserves points-to results (modulo the node remap).
    #[test]
    fn cycle_collapsing_preserves_answers(seed in 0u64..10_000) {
        let prog = generate(&small_profile(seed, 2, 3));
        let e = parcfl::frontend::extract(&prog).unwrap();
        let collapsed = parcfl::frontend::cycles::collapse_assign_cycles(&e.pag);
        let cfg = ample();
        let store = NoJmpStore;
        let orig = Solver::new(&e.pag, &cfg, &store);
        let coll = Solver::new(&collapsed.pag, &cfg, &store);
        for v in e.pag.application_locals().into_iter().take(12) {
            let a = orig.points_to_query(v, 0).answer.nodes();
            let b = coll.points_to_query(collapsed.remap[v.index()], 0).answer.nodes();
            let (Some(a), Some(b)) = (a, b) else { continue };
            // Objects are never merged, but their ids shift: compare names.
            let names = |pag: &parcfl::pag::Pag, os: &[parcfl::pag::NodeId]| {
                let mut v: Vec<String> = os
                    .iter()
                    .map(|&o| pag.node(o).name.split('+').next().unwrap().to_string())
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(names(&e.pag, &a), names(&collapsed.pag, &b));
        }
    }
}

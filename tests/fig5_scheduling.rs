//! End-to-end checks of the query-scheduling mechanics of Section III-C,
//! in the spirit of the paper's Fig. 5 example: variables whose values
//! come *out of* a deep container depend on the container being analysed
//! first, and the scheduler's dependence-depth order delivers exactly
//! that.

use parcfl::frontend::build_pag;
use parcfl::runtime::{run_simulated, schedule_for, Backend, Mode, RunConfig};
use parcfl::sched::{build_schedule, ScheduleOptions};

/// A Fig. 5-shaped program: `holder` (deep type) feeds `x` and `y` through
/// loads; `z`-cluster is an independent shallow chain.
const SRC: &str = "
    lib class Obj { }
    lib class Inner { field o: Obj; }
    lib class Outer { field i: Inner; }
    class A {
        method m() {
            var holder: Outer; var mid: Inner;
            var x: Obj; var y: Obj;
            var z1: Obj; var z2: Obj; var z3: Obj;
            holder = new Outer;
            mid = new Inner;
            holder.i = mid;
            x = new Obj;
            mid.o = x;
            y = x;
            z1 = new Obj; z2 = z1; z3 = z2;
        }
    }
";

#[test]
fn deeper_dependence_groups_issue_first() {
    let pag = build_pag(SRC).unwrap().pag;
    let queries = pag.application_locals();
    let sched = build_schedule(&pag, &queries, &ScheduleOptions::default());
    let order = sched.flat_order();
    let pos = |name: &str| {
        let n = pag.node_by_name(name).unwrap();
        order.iter().position(|&v| v == n).unwrap()
    };
    // The holder (Outer, level 3) must be issued before the z-chain
    // (Obj, level 1).
    assert!(pos("holder@A.m") < pos("z1@A.m"));
    assert!(pos("holder@A.m") < pos("z3@A.m"));
}

#[test]
fn naive_and_scheduled_dispatch_cover_all_queries() {
    let pag = build_pag(SRC).unwrap().pag;
    let queries = pag.application_locals();
    for mode in [Mode::Naive, Mode::DataSharingSched] {
        let s = schedule_for(&pag, &queries, mode);
        let mut flat = s.flat_order();
        flat.sort_unstable();
        let mut expect = queries.clone();
        expect.sort_unstable();
        assert_eq!(flat, expect, "{mode:?}");
    }
}

#[test]
fn scheduled_run_matches_unscheduled_answers_and_work_bound() {
    let pag = build_pag(SRC).unwrap().pag;
    let queries = pag.application_locals();
    let mk = |mode| {
        let cfg = RunConfig::new(mode, 3, Backend::Simulated);
        run_simulated(&pag, &queries, &cfg)
    };
    let d = mk(Mode::DataSharing);
    let dq = mk(Mode::DataSharingSched);
    assert_eq!(d.sorted_answers(), dq.sorted_answers());
    // On this tiny graph the orders may tie, but scheduling must never
    // blow the work up: total traversed steps stay within 2x.
    assert!(dq.stats.traversed_steps <= d.stats.traversed_steps * 2);
}

/// The paper's O3-vs-O1 claim, made concrete: with a budget that the
/// shallow-first order exhausts repeatedly, the dependence-aware order
/// records shortcuts early and traverses less in total.
#[test]
fn dependence_order_reduces_total_work_with_sharing() {
    // A container cluster feeding many dependent reader chains.
    let mut src = String::from(
        "lib class Obj { }
         lib class Box { field f: Obj; }
         class A {
           method m() {
             var b: Box; var v: Obj;
    ",
    );
    for i in 0..12 {
        src.push_str(&format!("var r{i}: Obj; "));
    }
    src.push_str(
        "b = new Box;
         v = new Obj;
         b.f = v;
         r0 = b.f;
    ",
    );
    // A chain hanging off the load: every r_i query traverses through r0,
    // whose ReachableNodes result the first query records as a shortcut.
    for i in 1..12 {
        src.push_str(&format!("r{i} = r{};\n", i - 1));
    }
    src.push_str("} }");
    let pag = build_pag(&src).unwrap().pag;
    let queries = pag.application_locals();

    let mk = |mode| {
        let mut cfg = RunConfig::new(mode, 1, Backend::Simulated);
        cfg.solver.tau_finished = 0;
        cfg.solver.tau_unfinished = 0;
        run_simulated(&pag, &queries, &cfg)
    };
    let naive = mk(Mode::Naive);
    let shared = mk(Mode::DataSharing);
    assert!(
        shared.stats.traversed_steps < naive.stats.traversed_steps,
        "sharing pays on repeated reads: {} vs {}",
        shared.stats.traversed_steps,
        naive.stats.traversed_steps
    );
    assert!(shared.stats.shortcuts_taken >= 11, "{:?}", shared.stats);
}

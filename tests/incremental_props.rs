//! Incremental analysis properties (DESIGN.md §12): PAG deltas with
//! selective jmp/memo/schedule invalidation must be indistinguishable
//! from cold starts.
//!
//! Three layers of proof:
//!
//! 1. **Graph layer** — a [`Pag`] produced by `apply_delta` (selective
//!    packed-row rebuild, table patching) behaves bit-identically to a
//!    from-scratch frozen graph with the same edge set: answers *and*
//!    deterministic step counters, across engine × state backend ×
//!    sweep workers {1, 2, 4, 8} × packed on/off.
//! 2. **Session layer** — warm re-queries after `apply_delta` (jmp
//!    store, matrix memo and schedule cache selectively invalidated by
//!    footprint) answer exactly like a cold session on the edited
//!    graph, on both engines at every worker count.
//! 3. **Battery layer** — a deliberately broken invalidation
//!    (`chaos_skip_invalidation`) is caught by the differential fuzzer
//!    and shrunk to a ≤ 10-edge, ≤ 3-edit counterexample that passes
//!    once the fault is removed.

use parcfl::check::seed::derive;
use parcfl::check::{run_fuzz, scenario_fails, test_seed, FuzzConfig, Scenario};
use parcfl::core::{SolverConfig, StateBackend};
use parcfl::frontend::build_pag;
use parcfl::pag::{DeltaOp, EdgeKind, NodeId, Pag, PagDelta};
use parcfl::runtime::{run_matrix, run_seq, AnalysisSession, Backend, Engine, Mode, RunConfig};
use parcfl::synth::mutate::{rebuild_with_edges, sample_edits};
use parcfl::synth::{build_bench, Profile};

fn ample(state: StateBackend, packed: bool) -> SolverConfig {
    SolverConfig {
        budget: 5_000_000,
        tau_finished: 0,
        tau_unfinished: 0,
        state,
        packed,
        ..SolverConfig::default()
    }
}

/// The `AssignLocal` edge between two named locals, in either direction.
fn assign_edge_between(pag: &Pag, a: &str, b: &str) -> parcfl::pag::Edge {
    let na = pag.node_by_name(a).expect("node a");
    let nb = pag.node_by_name(b).expect("node b");
    *pag.edges()
        .iter()
        .find(|e| {
            e.kind == EdgeKind::AssignLocal
                && ((e.src == na && e.dst == nb) || (e.src == nb && e.dst == na))
        })
        .expect("assign edge between the named locals")
}

/// Layer 1: `apply_delta` graphs are bit-identical to cold rebuilds.
///
/// For several seeded benches and edit scripts, apply the delta (which
/// selectively patches packed adjacency rows and index tables), then
/// rebuild a graph from scratch with the identical edge set. Every
/// observable — answers and traversed-step totals — must match on the
/// demand solver (both state backends, packed on/off) and on the matrix
/// engine at 1/2/4/8 sweep workers.
#[test]
fn applied_delta_graph_is_bit_identical_to_cold_rebuild() {
    let seed = test_seed();
    let mut effective = 0u32;
    for i in 0..3u64 {
        let bench = build_bench(&Profile::tiny(derive(seed, 0xD0_0000 + i)));
        let mut delta = PagDelta::new();
        for op in sample_edits(&bench.pag, derive(seed, 0xD1_0000 + i), 4) {
            delta.push(op);
        }
        let (edited, effect) = bench.pag.apply_delta(&delta);
        if effect.is_noop() {
            continue;
        }
        effective += 1;
        let rebuilt = rebuild_with_edges(&edited, edited.edges());
        assert_eq!(edited.edges(), rebuilt.edges(), "same canonical edge set");
        let queries: Vec<NodeId> = bench.queries.iter().copied().take(8).collect();
        for state in [StateBackend::Dense, StateBackend::Hash] {
            for packed in [true, false] {
                let solver = ample(state, packed);
                let a = run_seq(&edited, &queries, &solver);
                let b = run_seq(&rebuilt, &queries, &solver);
                assert_eq!(
                    a.sorted_answers(),
                    b.sorted_answers(),
                    "PARCFL_TEST_SEED={seed} i={i} {state:?} packed={packed}: demand answers"
                );
                assert_eq!(
                    a.stats.traversed_steps, b.stats.traversed_steps,
                    "PARCFL_TEST_SEED={seed} i={i} {state:?} packed={packed}: demand steps"
                );
                for workers in [1usize, 2, 4, 8] {
                    let cfg = RunConfig::new(Mode::Naive, workers, Backend::Simulated)
                        .with_solver(solver.clone());
                    let ma = run_matrix(&edited, &queries, &cfg);
                    let mb = run_matrix(&rebuilt, &queries, &cfg);
                    assert_eq!(
                        ma.sorted_answers(),
                        mb.sorted_answers(),
                        "PARCFL_TEST_SEED={seed} i={i} {state:?} packed={packed} \
                         workers={workers}: matrix answers"
                    );
                    assert_eq!(
                        ma.stats.traversed_steps, mb.stats.traversed_steps,
                        "PARCFL_TEST_SEED={seed} i={i} {state:?} packed={packed} \
                         workers={workers}: matrix steps"
                    );
                }
            }
        }
    }
    assert!(effective > 0, "every sampled edit script was a no-op");
}

/// Layer 2: warm incremental sessions equal cold sessions on the edited
/// graph — both engines, workers {1, 2, 4, 8}, packed on/off, both
/// state backends.
#[test]
fn incremental_session_equals_cold_session_across_grid() {
    let seed = test_seed();
    let bench = build_bench(&Profile::tiny(derive(seed, 0xD2_0000)));
    let queries: Vec<NodeId> = bench.queries.iter().copied().take(8).collect();
    // A guaranteed-effective script: remove a real edge, then a sampled op.
    let mut edits = vec![DeltaOp::RemoveEdge(bench.pag.edges()[0])];
    edits.extend(sample_edits(&bench.pag, derive(seed, 0xD3_0000), 1));
    for engine in [Engine::Demand, Engine::Matrix] {
        for workers in [1usize, 2, 4, 8] {
            for packed in [true, false] {
                let state = if workers % 3 == 0 {
                    StateBackend::Hash
                } else {
                    StateBackend::Dense
                };
                let solver = ample(state, packed);
                let mut warm_session = AnalysisSession::new(&bench.pag)
                    .with_solver(solver.clone())
                    .with_threads(workers)
                    .with_engine(engine);
                warm_session.submit(&queries, Mode::DataSharingSched, Backend::Simulated);
                let mut warm = None;
                for op in &edits {
                    let mut d = PagDelta::new();
                    d.push(*op);
                    warm_session.apply_delta(&d);
                    warm = Some(warm_session.submit(
                        &queries,
                        Mode::DataSharingSched,
                        Backend::Simulated,
                    ));
                }
                let edited = warm_session.pag().clone();
                let mut cold_session = AnalysisSession::new(&edited)
                    .with_solver(solver.clone())
                    .with_threads(workers)
                    .with_engine(engine);
                let cold =
                    cold_session.submit(&queries, Mode::DataSharingSched, Backend::Simulated);
                assert_eq!(
                    warm.expect("edit script is non-empty").sorted_answers(),
                    cold.sorted_answers(),
                    "PARCFL_TEST_SEED={seed} engine={engine:?} workers={workers} \
                     packed={packed}: warm re-query diverges from cold session"
                );
            }
        }
    }
}

/// Two disjoint maker-call chains (`p{i} = call this.mk{i}(); x{i} =
/// p{i}.f; y{i} = x{i}`): the shape whose field-load traversals populate
/// the jmp store. Chain edits must invalidate only their own chain's
/// entries.
fn two_chains() -> Pag {
    let src = "class Obj { } class Box { field f: Obj; }
               class A {
                 method mk0(): Box { var b0: Box; var v0: Obj;
                   b0 = new Box; v0 = new Obj; b0.f = v0; return b0; }
                 method mk1(): Box { var b1: Box; var v1: Obj;
                   b1 = new Box; v1 = new Obj; b1.f = v1; return b1; }
                 method m() {
                   var p0: Box; var x0: Obj; var y0: Obj;
                   var p1: Box; var x1: Obj; var y1: Obj;
                   p0 = call this.mk0(); x0 = p0.f; y0 = x0;
                   p1 = call this.mk1(); x1 = p1.f; y1 = x1;
                 } }";
    build_pag(src).unwrap().pag
}

/// Removing an edge in the middle of a traversal footprint invalidates
/// the entries that walked it — and only those — and the warm re-query
/// matches a cold run on the edited graph. The disjoint sibling chain's
/// entries stay warm.
#[test]
fn removing_a_footprint_edge_invalidates_selectively() {
    let pag = two_chains();
    let queries = pag.application_locals();
    let mut session = AnalysisSession::new(&pag)
        .with_solver(ample(StateBackend::Dense, true))
        .with_threads(2);
    session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    let resident = session.store_entries() as u64;
    assert!(resident > 0, "sharing run left warm entries");

    // Cut x0 -> y0: dirty {x0, y0}. Entries whose footprints stay on
    // chain 1 survive.
    let e = assign_edge_between(&pag, "x0@A.m", "y0@A.m");
    let mut delta = PagDelta::new();
    delta.remove_edge(e.src, e.dst, e.kind);
    let report = session.apply_delta(&delta);
    assert!(!report.noop);
    assert_eq!(report.revision, 1);
    assert!(report.invalidated_jmps > 0, "footprint hit must invalidate");
    assert!(report.retained_jmps > 0, "disjoint chain must stay warm");
    assert_eq!(report.invalidated_jmps + report.retained_jmps, resident);

    let warm = session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    let cold = run_seq(session.pag(), &queries, &ample(StateBackend::Dense, true));
    assert_eq!(warm.sorted_answers(), cold.sorted_answers());
    // The edit genuinely changed the answer: y0 no longer reaches the
    // object mk0 boxes.
    let y0 = session.pag().node_by_name("y0@A.m").unwrap();
    let y0_pts = warm
        .sorted_answers()
        .iter()
        .find(|(q, _)| *q == y0)
        .and_then(|(_, ans)| ans.complete().map(<[_]>::len))
        .expect("y0 completed");
    assert_eq!(y0_pts, 0, "cut chain empties y0's points-to set");
}

/// Deleting a call site (whose interned contexts stay allocated) drops
/// the param/ret flow; the warm re-query agrees with a cold run and the
/// callee-routed answer disappears.
#[test]
fn deleting_a_call_site_invalidates_and_requeries_match() {
    let pag = two_chains();
    let queries = pag.application_locals();
    let p0 = pag.node_by_name("p0@A.m").unwrap();
    // Chain 0's call site: the one whose Ret edge lands in p0.
    let cs = pag
        .edges()
        .iter()
        .find_map(|e| match e.kind {
            EdgeKind::Ret(cs) if e.dst == p0 => Some(cs),
            _ => None,
        })
        .expect("the mk0 call produced a ret edge into p0");
    let mut session = AnalysisSession::new(&pag)
        .with_solver(ample(StateBackend::Dense, true))
        .with_threads(1);
    let before = session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    assert!(session.store_entries() > 0, "sharing run left warm entries");
    let y0 = pag.node_by_name("y0@A.m").unwrap();
    let pts_of = |r: &parcfl::runtime::RunResult, q: NodeId| {
        r.sorted_answers()
            .iter()
            .find(|(n, _)| *n == q)
            .and_then(|(_, ans)| ans.complete().map(<[_]>::len))
            .expect("query completed")
    };
    assert_eq!(pts_of(&before, y0), 1, "call routes the boxed object to y0");

    let mut delta = PagDelta::new();
    delta.remove_call_site(cs);
    let report = session.apply_delta(&delta);
    assert!(!report.noop, "removing a live call site is effective");
    assert!(report.invalidated_jmps > 0);
    // The call-site id space is append-only: contexts interned over the
    // removed site stay valid, the graph just no longer reaches them.
    assert_eq!(session.pag().call_site_count(), pag.call_site_count());

    let warm = session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    let cold = run_seq(session.pag(), &queries, &ample(StateBackend::Dense, true));
    assert_eq!(warm.sorted_answers(), cold.sorted_answers());
    assert_eq!(pts_of(&warm, y0), 0, "severed call empties y0's answer");
}

/// An edit whose dirty nodes cover a memoised schedule's whole query
/// group drops exactly that schedule; schedules over untouched queries
/// survive.
#[test]
fn edit_emptying_a_schedule_cache_group_drops_only_it() {
    let src = "class Obj { }
               class A { method m() {
                 var a: Obj; var b: Obj; var c: Obj;
                 var x: Obj; var y: Obj;
                 a = new Obj; b = a; c = b;
                 x = new Obj; y = x;
               } }";
    let pag = build_pag(src).unwrap().pag;
    let c = pag.node_by_name("c@A.m").unwrap();
    let y = pag.node_by_name("y@A.m").unwrap();
    let mut session = AnalysisSession::new(&pag)
        .with_solver(ample(StateBackend::Dense, true))
        .with_threads(2);
    // Two batches memoise two schedules: one entirely over the a/b/c
    // chain, one entirely over x/y.
    session.submit(&[c], Mode::DataSharingSched, Backend::Simulated);
    session.submit(&[y], Mode::DataSharingSched, Backend::Simulated);
    assert_eq!(session.schedule_cache().len(), 2);

    let e = assign_edge_between(&pag, "b@A.m", "c@A.m");
    let mut delta = PagDelta::new();
    delta.remove_edge(e.src, e.dst, e.kind);
    let report = session.apply_delta(&delta);
    assert_eq!(
        report.invalidated_schedules, 1,
        "exactly the schedule whose group contains a dirty query drops"
    );
    assert_eq!(
        session.schedule_cache().len(),
        1,
        "the x/y schedule survives"
    );
    let warm = session.submit(&[y], Mode::DataSharingSched, Backend::Simulated);
    let cold = run_seq(session.pag(), &[y], &ample(StateBackend::Dense, true));
    assert_eq!(warm.sorted_answers(), cold.sorted_answers());
}

/// A no-op edit (removing an absent edge, re-adding a present one)
/// bumps nothing: no revision change, zero invalidation, the store
/// untouched, and the next submit is served warm with identical answers.
#[test]
fn noop_edit_invalidates_nothing() {
    let bench = build_bench(&Profile::tiny(7));
    let queries: Vec<NodeId> = bench.queries.iter().copied().take(6).collect();
    let mut session = AnalysisSession::new(&bench.pag)
        .with_solver(ample(StateBackend::Dense, true))
        .with_threads(1);
    let first = session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    let resident = session.store_entries();

    let e0 = bench.pag.edges()[0];
    let mut delta = PagDelta::new();
    // Removing an absent edge and re-adding a present one both cancel.
    delta.remove_edge(NodeId::new(0), NodeId::new(0), EdgeKind::AssignLocal);
    delta.add_edge(e0.src, e0.dst, e0.kind);
    let report = session.apply_delta(&delta);
    assert!(report.noop);
    assert_eq!(report.revision, 0, "revision does not advance on a no-op");
    assert_eq!(report.invalidated_jmps, 0);
    assert_eq!(report.invalidated_memos, 0);
    assert_eq!(report.invalidated_schedules, 0);
    assert_eq!(session.store_entries(), resident, "store untouched");

    let warm = session.submit(&queries, Mode::DataSharing, Backend::Simulated);
    assert_eq!(warm.sorted_answers(), first.sorted_answers());
    assert!(
        warm.stats.warm_hits > 0,
        "re-query after a no-op edit is served from the warm store"
    );
}

/// Layer 3 (the battery proves itself): with invalidation deliberately
/// skipped, the fuzzer's mutate-then-requery dimension must catch the
/// stale-answer divergence and shrink it to ≤ 10 edges and ≤ 3 edits —
/// and the shrunk counterexample must pass once the fault is removed.
#[test]
fn skipped_invalidation_is_caught_and_shrinks_small() {
    let seed = test_seed();
    let mut found: Option<parcfl::check::FuzzFailure> = None;
    for attempt in 0..8u64 {
        let cfg = FuzzConfig {
            iters: 15,
            seed: derive(seed, 0xDE17_A000 + attempt),
            shrink: true,
            threaded_every: 0,
            chaos: false,
            use_small: false,
            delta: true,
            chaos_invalidation: true,
        };
        let report = run_fuzz(&cfg);
        if let Some(f) = report.failure {
            let better = found
                .as_ref()
                .is_none_or(|b| f.scenario.pag.edge_count() < b.scenario.pag.edge_count());
            if better {
                found = Some(f);
            }
            let best = found.as_ref().unwrap();
            if best.scenario.pag.edge_count() <= 10 && best.scenario.deltas.len() <= 3 {
                break;
            }
        }
    }
    let f = found.unwrap_or_else(|| {
        panic!("PARCFL_TEST_SEED={seed}: skipped invalidation was never caught")
    });
    let sc = &f.scenario;
    assert!(
        sc.pag.edge_count() <= 10,
        "PARCFL_TEST_SEED={seed}: shrunk to {} edges (> 10)\n{}",
        sc.pag.edge_count(),
        sc.to_snapshot()
    );
    assert!(
        sc.deltas.len() <= 3,
        "PARCFL_TEST_SEED={seed}: shrunk to {} edits (> 3)",
        sc.deltas.len()
    );
    assert!(
        !sc.deltas.is_empty(),
        "PARCFL_TEST_SEED={seed}: the counterexample must hinge on an edit"
    );
    // Round-trips through the snapshot format and still fails…
    let back = Scenario::from_snapshot(&sc.to_snapshot()).expect("snapshot parses");
    assert!(
        scenario_fails(&back),
        "PARCFL_TEST_SEED={seed}: round-tripped counterexample no longer fails"
    );
    // …and the failure is the injected fault, not the input.
    let mut clean = back.clone();
    clean.solver.chaos_skip_invalidation = false;
    assert!(
        !scenario_fails(&clean),
        "PARCFL_TEST_SEED={seed}: scenario fails even with invalidation restored"
    );
}

//! Cross-mode equivalence: the parallel strategies must never change what
//! the analysis computes, only what it costs.
//!
//! With a budget high enough that no query aborts, every mode × backend ×
//! thread-count combination must return exactly the same answers as the
//! sequential baseline. (With tight budgets, out-of-budget verdicts may
//! legitimately differ across modes — shortcut charges depend on what was
//! shared — so there the invariant is: queries completed by *both* runs
//! agree.)

use parcfl::core::{Answer, SolverConfig};
use parcfl::runtime::{run, run_seq, Backend, Mode, RunConfig};
use parcfl::synth::{build_bench, Profile};

fn bench() -> parcfl::synth::Bench {
    build_bench(&Profile::tiny(1234))
}

#[test]
fn all_modes_agree_with_ample_budget() {
    let b = bench();
    let solver = SolverConfig::default().with_budget(5_000_000);
    let seq = run_seq(&b.pag, &b.queries, &solver);
    assert_eq!(
        seq.stats.out_of_budget, 0,
        "budget must be ample for this test"
    );
    for mode in [Mode::Naive, Mode::DataSharing, Mode::DataSharingSched] {
        for backend in [Backend::Simulated, Backend::Threaded] {
            for threads in [1, 3, 16] {
                let mut cfg = RunConfig::new(mode, threads, backend);
                cfg.solver = solver.clone();
                let r = run(&b.pag, &b.queries, &cfg);
                assert_eq!(
                    r.sorted_answers(),
                    seq.sorted_answers(),
                    "{mode:?}/{backend:?} x{threads}"
                );
            }
        }
    }
}

#[test]
fn tight_budget_completed_answers_agree() {
    let b = bench();
    let solver = SolverConfig::default().with_budget(400);
    let seq = run_seq(&b.pag, &b.queries, &solver);
    for mode in [Mode::DataSharing, Mode::DataSharingSched] {
        let mut cfg = RunConfig::new(mode, 4, Backend::Simulated);
        cfg.solver = solver.clone();
        let par = run(&b.pag, &b.queries, &cfg);
        let seq_sorted = seq.sorted_answers();
        let par_sorted = par.sorted_answers();
        assert_eq!(seq_sorted.len(), par_sorted.len());
        let mut compared = 0;
        for ((qa, a), (qb, b)) in seq_sorted.iter().zip(par_sorted.iter()) {
            assert_eq!(qa, qb);
            if let (Answer::Complete(_), Answer::Complete(_)) = (a, b) {
                assert_eq!(a, b, "completed answers diverge on {qa:?} under {mode:?}");
                compared += 1;
            }
        }
        assert!(compared > 0, "some queries complete under the tight budget");
    }
}

#[test]
fn simulated_run_is_reproducible_across_invocations() {
    let b = bench();
    let mk = || {
        let mut cfg = RunConfig::new(Mode::DataSharingSched, 8, Backend::Simulated);
        cfg.solver = b.solver.clone();
        run(&b.pag, &b.queries, &cfg)
    };
    let a = mk();
    let c = mk();
    assert_eq!(a.sorted_answers(), c.sorted_answers());
    assert_eq!(a.stats.makespan, c.stats.makespan);
    assert_eq!(a.stats.traversed_steps, c.stats.traversed_steps);
    assert_eq!(a.stats.charged_steps, c.stats.charged_steps);
    assert_eq!(a.stats.jmp_edges, c.stats.jmp_edges);
    assert_eq!(a.stats.early_terminations, c.stats.early_terminations);
}

#[test]
fn budget_monotonicity() {
    // Raising the budget can only move queries from OutOfBudget to
    // Complete, never change a completed answer.
    let b = bench();
    let lo = run_seq(&b.pag, &b.queries, &SolverConfig::default().with_budget(40));
    let hi = run_seq(
        &b.pag,
        &b.queries,
        &SolverConfig::default().with_budget(5_000_000),
    );
    assert_eq!(hi.stats.out_of_budget, 0);
    assert!(
        lo.stats.out_of_budget > 0,
        "test needs a binding low budget"
    );
    for ((qa, a), (qb, h)) in lo.sorted_answers().iter().zip(hi.sorted_answers().iter()) {
        assert_eq!(qa, qb);
        if let Answer::Complete(_) = a {
            assert_eq!(a, h, "low-budget completion differs on {qa:?}");
        }
    }
}

#[test]
fn threaded_and_simulated_agree_on_sharing_runs_with_ample_budget() {
    let b = bench();
    let solver = SolverConfig::default().with_budget(5_000_000);
    let mut cfg = RunConfig::new(Mode::DataSharing, 4, Backend::Threaded);
    cfg.solver = solver.clone();
    let thr = run(&b.pag, &b.queries, &cfg);
    cfg.backend = Backend::Simulated;
    let sim = run(&b.pag, &b.queries, &cfg);
    assert_eq!(thr.sorted_answers(), sim.sorted_answers());
}

//! Batch-mode analysis — the paper's deployment scenario: a client
//! requests points-to information for *all* locals of the application code
//! at once, and the parallel runtime answers them with data sharing and
//! query scheduling.
//!
//! Generates a Table I-shaped synthetic benchmark, runs `SeqCFL` and
//! `ParCFL` in its three configurations through a persistent
//! [`AnalysisSession`], prints the speedup breakdown, then re-submits the
//! batch to show what the warm jmp store saves a follow-up request.
//!
//! ```sh
//! cargo run --release --example batch_analysis [benchmark-name]
//! ```

use parcfl::runtime::{run_seq, AnalysisSession, Backend, Mode};
use parcfl::synth::{build_bench, table1_profiles};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "_202_jess".into());
    let profile = table1_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{name}`; available:");
            for p in table1_profiles() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(1);
        });

    println!("benchmark {name}: generating and extracting...");
    let b = build_bench(&profile);
    println!(
        "  PAG: {} nodes, {} edges; {} queries; budget B = {}",
        b.raw_nodes,
        b.raw_edges,
        b.queries.len(),
        b.solver.budget
    );

    let seq = run_seq(&b.pag, &b.queries, &b.solver);
    println!(
        "\nSeqCFL: {} steps traversed, {} queries answered, {} out of budget ({:?} wall)",
        seq.stats.traversed_steps, seq.stats.completed, seq.stats.out_of_budget, seq.stats.wall
    );

    for (label, mode, threads) in [
        ("ParCFL(16, naive)", Mode::Naive, 16),
        ("ParCFL(16, D)    ", Mode::DataSharing, 16),
        ("ParCFL(16, DQ)   ", Mode::DataSharingSched, 16),
    ] {
        // One cold session per mode: each configuration starts from an
        // empty jmp store, exactly like the paper's one-shot runs.
        let mut session = AnalysisSession::new(&b.pag)
            .with_threads(threads)
            .with_solver(b.solver.clone());
        let r = session.submit(&b.queries, mode, Backend::Simulated);
        assert_eq!(r.stats.queries, b.queries.len());
        println!(
            "{label}: speedup {:>6.1}x | traversed {:>10} | saved {:>10} | jmps {:>6} | ETs {}",
            seq.stats.makespan as f64 / r.stats.makespan as f64,
            r.stats.traversed_steps,
            r.stats.steps_saved,
            r.stats.jmp_edges,
            r.stats.early_terminations,
        );
    }

    // The service scenario: keep the DQ session alive and answer the same
    // batch again — the warm store turns prior work into shortcuts.
    let mut session = AnalysisSession::new(&b.pag)
        .with_threads(16)
        .with_solver(b.solver.clone());
    let cold = session.submit(&b.queries, Mode::DataSharingSched, Backend::Simulated);
    let warm = session.submit(&b.queries, Mode::DataSharingSched, Backend::Simulated);
    assert_eq!(warm.sorted_answers(), cold.sorted_answers());
    println!(
        "\nwarm re-submit (DQ):  traversed {:>10} vs cold {:>10} | warm hits {:>6} | {} entries resident",
        warm.stats.traversed_steps,
        cold.stats.traversed_steps,
        warm.stats.warm_hits,
        session.store_entries(),
    );
    println!(
        "session totals: {} batches, {} queries, {} steps traversed",
        session.cumulative().batches,
        session.cumulative().queries,
        session.cumulative().traversed_steps,
    );
    println!(
        "\n(simulated 16-thread virtual time; see DESIGN.md for the \
         single-core substitution argument)"
    );
}

//! Whole-program vs demand-driven analysis — the motivation of the
//! paper's introduction: "for many clients … the points-to information is
//! needed on-demand only for some but not all variables".
//!
//! Runs Andersen's whole-program analysis (the algorithm every prior
//! parallel pointer analysis in Table II implements) and the demand-driven
//! CFL analysis on the same PAG, then compares (a) the cost profile as the
//! number of queried variables grows and (b) precision on wrapper-heavy
//! code, where context-sensitivity pays.
//!
//! ```sh
//! cargo run --release --example whole_vs_demand
//! ```

use parcfl::andersen;
use parcfl::core::{NoJmpStore, Solver};
use parcfl::synth::{build_bench, table1_profiles};

fn main() {
    let profile = table1_profiles()
        .into_iter()
        .find(|p| p.name == "avrora")
        .unwrap();
    let b = build_bench(&profile);
    println!(
        "benchmark {}: {} nodes, {} edges, {} candidate queries",
        b.name,
        b.pag.node_count(),
        b.pag.edge_count(),
        b.queries.len()
    );

    // Whole-program: pays the full cost regardless of client interest.
    let t0 = std::time::Instant::now();
    let whole = andersen::analyze(&b.pag);
    let whole_wall = t0.elapsed();
    println!(
        "\nAndersen (whole-program): {:?}, {} propagations, {} field slots",
        whole_wall, whole.propagations, whole.field_slots
    );

    // Demand-driven: cost scales with the client's question count.
    let store = NoJmpStore;
    let solver = Solver::new(&b.pag, &b.solver, &store);
    println!("\nCFL-reachability (demand-driven):");
    for k in [1usize, 5, 25, 125] {
        let t = std::time::Instant::now();
        let mut answered = 0;
        for &q in b.queries.iter().take(k) {
            if solver.points_to_query(q, 0).answer.complete().is_some() {
                answered += 1;
            }
        }
        println!(
            "  {k:>4} queries: {:?} ({answered} answered within budget)",
            t.elapsed()
        );
    }

    // Precision: count variables where the context-sensitive demand answer
    // is strictly smaller than Andersen's.
    let mut refined = 0;
    let mut equal = 0;
    let mut sampled = 0;
    for &q in b.queries.iter().take(300) {
        let Some(cfl) = solver.points_to_query(q, 0).answer.nodes() else {
            continue;
        };
        sampled += 1;
        let a = whole.pts_of(q);
        if cfl.len() < a.len() {
            refined += 1;
        } else {
            equal += 1;
        }
        // Soundness cross-check while we're here.
        for o in &cfl {
            assert!(a.contains(o), "CFL answer must be within Andersen's");
        }
    }
    println!(
        "\nprecision on {sampled} sampled variables: {refined} strictly \
         refined by context-sensitivity, {equal} equal"
    );
    println!(
        "takeaway: demand-driven answers arrive in microseconds per query \
         and are at least as precise; whole-program analysis only wins when \
         the client truly needs every variable."
    );
}

//! Witness explanations: *why* does a variable point to an object?
//!
//! Uses the traced query API to print, for every object in a points-to
//! set, the chain of PAG edges the analysis followed — the kind of output
//! a debugging client (one of the paper's motivating applications) shows
//! its user.
//!
//! ```sh
//! cargo run --release --example explain
//! ```

use parcfl::core::{NoJmpStore, Solver, SolverConfig};
use parcfl::frontend::build_pag;

const PROGRAM: &str = r#"
    lib class Obj { }
    class Box {
        field f: Obj;
        method set(v: Obj) { this.f = v; }
    }
    class Factory {
        method wrap(v: Obj): Box {
            var b: Box;
            b = new Box;
            call b.set(v);
            return b;
        }
    }
    class Main {
        method run(fac: Factory) {
            var v: Obj; var bx: Box; var out: Obj; var copy: Obj;
            v = new Obj;
            bx = call fac.wrap(v);
            out = bx.f;
            copy = out;
        }
    }
"#;

fn main() {
    let pag = build_pag(PROGRAM).expect("valid program").pag;
    let cfg = SolverConfig::default();
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);

    for name in ["copy@Main.run", "bx@Main.run"] {
        let v = pag.node_by_name(name).unwrap();
        let (out, trace) = solver.traced_points_to_query(v, 0);
        let objs = out.answer.complete().expect("within budget").to_vec();
        println!("{name} may point to {} object(s):", objs.len());
        for (o, c) in &objs {
            println!("\nwhy {} ∈ pts({name}):", pag.node(*o).name);
            match trace.witness(*o, c) {
                Some(w) => println!("{}", w.render(&pag)),
                None => println!("  (no witness recorded)"),
            }
        }
        println!();
    }
}

//! Quickstart: analyse the paper's Fig. 2 `Vector` program and print the
//! points-to sets of its `main` locals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parcfl::core::{NoJmpStore, Solver, SolverConfig};
use parcfl::frontend::build_pag;

const VECTOR_MJ: &str = r#"
    lib class Object { }
    lib class String extends Object { }
    lib class Integer extends Object { }
    class Vector {
        field elems: Object[];
        method <init>() {
            var t: Object[];
            t = new Object[];
            this.elems = t;
        }
        method add(e: Object) {
            var t: Object[];
            t = this.elems;
            t[] = e;
        }
        method get(i: int): Object {
            var t: Object[];
            var r: Object;
            t = this.elems;
            r = t[];
            return r;
        }
    }
    class Main {
        static method main() {
            var v1: Vector; var n1: String; var s1: Object;
            var v2: Vector; var n2: Integer; var s2: Object;
            var i: int;
            v1 = new Vector;
            call v1.<init>();
            n1 = new String;
            call v1.add(n1);
            s1 = call v1.get(i);
            v2 = new Vector;
            call v2.<init>();
            n2 = new Integer;
            call v2.add(n2);
            s2 = call v2.get(i);
        }
    }
"#;

fn main() {
    // 1. Frontend: parse + extract the Pointer Assignment Graph.
    let extraction = build_pag(VECTOR_MJ).expect("valid program");
    let pag = extraction.pag;
    println!("PAG: {}", parcfl::pag::stats::PagStats::of(&pag));

    // 2. Demand-driven, context- and field-sensitive points-to queries.
    let cfg = SolverConfig::default();
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);

    println!("\npoints-to sets of Main.main locals:");
    for v in pag.application_locals() {
        let info = pag.node(v);
        if !info.name.ends_with("@Main.main") {
            continue;
        }
        let out = solver.points_to_query(v, 0);
        match out.answer.nodes() {
            Some(objs) => {
                let names: Vec<_> = objs.iter().map(|&o| pag.node(o).name.clone()).collect();
                println!(
                    "  {:<16} -> {:<40} ({} steps)",
                    info.name,
                    names.join(", "),
                    out.stats.traversed_steps
                );
            }
            None => println!("  {:<16} -> (out of budget)", info.name),
        }
    }

    // 3. The headline precision fact: s1 sees the String, never the
    //    Integer (context-sensitivity rejects the unrealisable path).
    let s1 = pag.node_by_name("s1@Main.main").unwrap();
    let objs = solver.points_to_query(s1, 0).answer.nodes().unwrap();
    assert_eq!(objs.len(), 1);
    println!("\nok: s1 points to exactly one object (the String allocation).");
}

//! A demand-driven **alias disambiguation** client — one of the paper's
//! motivating applications (Section I cites alias disambiguation [21]).
//!
//! Two variables may alias iff their context-sensitive points-to sets
//! intersect. Demand-driven CFL-reachability answers exactly the queries
//! the client asks, instead of analysing the whole program.
//!
//! ```sh
//! cargo run --release --example alias_checker
//! ```

use parcfl::core::{NoJmpStore, Solver, SolverConfig};
use parcfl::frontend::build_pag;
use parcfl::pag::{NodeId, Pag};

const PROGRAM: &str = r#"
    lib class Obj { }
    class Buffer {
        field data: Obj;
    }
    class Worker {
        method fill(b: Buffer, v: Obj) {
            b.data = v;
        }
        method drain(b: Buffer): Obj {
            var r: Obj;
            r = b.data;
            return r;
        }
        method run() {
            var in1: Buffer; var in2: Buffer; var shared: Buffer;
            var v1: Obj; var v2: Obj;
            var out1: Obj; var out2: Obj; var both: Obj;
            in1 = new Buffer;
            in2 = new Buffer;
            shared = in1;
            v1 = new Obj;
            v2 = new Obj;
            call this.fill(in1, v1);
            call this.fill(in2, v2);
            out1 = call this.drain(in1);
            out2 = call this.drain(in2);
            both = call this.drain(shared);
        }
    }
"#;

/// May `a` and `b` refer to the same object? `None` = unknown (a query ran
/// out of budget, so the client must assume they may).
fn may_alias(solver: &Solver<'_>, a: NodeId, b: NodeId) -> Option<bool> {
    let na = solver.points_to_query(a, 0).answer.nodes()?;
    let nb = solver.points_to_query(b, 0).answer.nodes()?;
    Some(na.iter().any(|o| nb.contains(o)))
}

fn var(pag: &Pag, name: &str) -> NodeId {
    pag.node_by_name(name).expect(name)
}

fn main() {
    let pag = build_pag(PROGRAM).expect("valid program").pag;
    let cfg = SolverConfig::default();
    let store = NoJmpStore;
    let solver = Solver::new(&pag, &cfg, &store);

    let pairs = [
        ("in1@Worker.run", "in2@Worker.run"),
        ("in1@Worker.run", "shared@Worker.run"),
        ("out1@Worker.run", "out2@Worker.run"),
        ("out1@Worker.run", "both@Worker.run"),
        ("v1@Worker.run", "out1@Worker.run"),
    ];
    println!("alias queries over Worker.run:");
    for (a, b) in pairs {
        let verdict = may_alias(&solver, var(&pag, a), var(&pag, b));
        println!(
            "  {:<18} ~ {:<18} : {}",
            a.split('@').next().unwrap(),
            b.split('@').next().unwrap(),
            match verdict {
                Some(true) => "MAY alias",
                Some(false) => "NO alias",
                None => "unknown (budget)",
            }
        );
    }

    // The interesting precision facts, asserted:
    assert_eq!(
        may_alias(
            &solver,
            var(&pag, "in1@Worker.run"),
            var(&pag, "in2@Worker.run")
        ),
        Some(false),
        "distinct buffers never alias"
    );
    assert_eq!(
        may_alias(
            &solver,
            var(&pag, "in1@Worker.run"),
            var(&pag, "shared@Worker.run")
        ),
        Some(true),
        "shared = in1 aliases"
    );
    assert_eq!(
        may_alias(
            &solver,
            var(&pag, "out1@Worker.run"),
            var(&pag, "out2@Worker.run")
        ),
        Some(false),
        "context-sensitive drains stay separate"
    );
    assert_eq!(
        may_alias(
            &solver,
            var(&pag, "out1@Worker.run"),
            var(&pag, "both@Worker.run")
        ),
        Some(true),
        "draining the shared buffer returns v1's object too"
    );
    println!("\nok: all alias verdicts as expected.");
}
